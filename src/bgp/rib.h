// Routing Information Base.
//
// A Rib stores, per prefix, the routes learned from each peer (Adj-RIB-In
// collapsed into one table, the way a route collector's RIB dump looks)
// and can answer the queries the measurement pipeline needs: all
// prefix-origin pairs, all paths toward a prefix, and per-origin prefix
// sets.
//
// Storage is a flat vector of rows sorted by prefix (not a node-based
// tree): reads are cache-friendly and the sorted order IS the
// deterministic iteration order for_each() promises. Writes go through a
// build-phase staging buffer -- insert()/insert_many() append staged
// entries in O(1) -- and finalize() sorts the staged batch once and
// merges it into the table, applying the replace-per-peer rule in
// insertion order (a RIB has one best path per peer per prefix, and a
// later insert for the same (prefix, peer) replaces the earlier path).
// Read accessors finalize lazily, so callers that interleave inserts and
// queries keep working; bulk builders (the route collector's sharded
// merge, the MRT decoder's stream fold) call finalize() once at the end.
//
// Concurrency: a finalized Rib is safe to read from many threads. A Rib
// with staged writes is not (the lazy finalize mutates); finish building
// before sharing, as every pipeline stage does.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "bgp/route.h"
#include "netbase/prefix.h"

namespace manrs::bgp {

/// One RIB entry: a path learned from a peer.
struct RibEntry {
  uint32_t peer_index = 0;  // collector peer that contributed the path
  AsPath path;
};

/// One table row: a prefix and its per-peer entries (first-insert order).
struct RibRow {
  net::Prefix prefix;
  std::vector<RibEntry> entries;
};

class Rib {
 public:
  /// Register a collector peer; returns its index. `peer_asn` is the AS the
  /// collector sessions with.
  uint32_t add_peer(net::Asn peer_asn);

  /// Index of the peer sessioning as `peer_asn`, registering it if new.
  /// Linear in peer_count() -- collector peer tables are tens of entries.
  uint32_t find_or_add_peer(net::Asn peer_asn);

  size_t peer_count() const { return peers_.size(); }
  net::Asn peer_asn(uint32_t index) const { return peers_.at(index); }

  /// Stage a path for `prefix` from peer `peer_index`. Duplicate paths
  /// from the same peer replace the previous one at finalize time.
  void insert(const net::Prefix& prefix, uint32_t peer_index, AsPath path);

  /// Stage a batch of entries for `prefix` (same replace-per-peer
  /// semantics as repeated insert).
  void insert_many(const net::Prefix& prefix,
                   std::span<const RibEntry> entries);

  /// Stage a withdrawal: at finalize time, remove peer `peer_index`'s
  /// entry for `prefix` (a no-op when no such entry exists by then --
  /// BGP withdraws are idempotent). Ordered with inserts: an insert
  /// staged after an erase for the same (prefix, peer) survives, and
  /// vice versa. Rows left with no entries are dropped from the table.
  void erase(const net::Prefix& prefix, uint32_t peer_index);

  /// Reopen a finalized Rib for another staged write batch (update-stream
  /// folding: RIB snapshot + deltas -> new snapshot). A runtime no-op --
  /// insert/erase may always be staged -- but the sanctioned transition
  /// out of the shared-read state: after begin_delta() the Rib must be
  /// treated as under construction (not shared across threads) until the
  /// next finalize(). The rib-typestate protocol checks this statically.
  void begin_delta() {}

  /// Merge all staged inserts into the sorted table. Idempotent; cheap
  /// when nothing is staged. A staged batch whose ops are all effective
  /// no-ops (withdrawals of absent entries, re-announcements of identical
  /// paths) leaves the table untouched -- no row churn, no re-sort, and
  /// references returned by entries() stay valid. Read accessors call
  /// this lazily, but bulk builders should call it once after the last
  /// insert.
  void finalize();

  /// True when no writes are staged (the table is the full state).
  bool finalized() const { return staged_.empty(); }

  /// Drop every row and staged write (registered peers are kept): the
  /// Rib returns to the clean build state and may be refilled. The
  /// sanctioned way to reuse a finalized Rib for another build cycle.
  void clear();

  /// Replace the table with externally built rows. Precondition: `rows`
  /// sorted by prefix, no duplicate prefixes, entries already deduplicated
  /// per peer -- what the collector's sharded merge produces. Any staged
  /// writes are discarded.
  void adopt_rows(std::vector<RibRow> rows);

  size_t prefix_count() const;
  size_t entry_count() const;

  /// All entries for `prefix` (empty if none). The reference is valid
  /// until the next write + finalize cycle.
  const std::vector<RibEntry>& entries(const net::Prefix& prefix) const;

  /// Iterate over (prefix, entries) in deterministic (sorted) order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    ensure_finalized();
    for (const RibRow& row : table_) fn(row.prefix, row.entries);
  }

  /// Distinct (prefix, origin) pairs across all peers, sorted.
  std::vector<PrefixOrigin> prefix_origins() const;

  /// Prefixes originated by `asn` (distinct, sorted).
  std::vector<net::Prefix> prefixes_originated_by(net::Asn asn) const;

 private:
  struct Staged {
    net::Prefix prefix;
    RibEntry entry;
    bool erase = false;  // tombstone: remove entry.peer_index's path
  };

  /// Lazy finalize from const accessors; see the concurrency note above.
  void ensure_finalized() const {
    if (!staged_.empty()) const_cast<Rib*>(this)->finalize();
  }

  /// Apply one staged entry onto a row (replace-per-peer or append).
  static void apply_entry(std::vector<RibEntry>& entries, Staged&& staged);

  /// True iff every staged op leaves the table unchanged (the finalize()
  /// fast path's test).
  bool staged_is_noop() const;

  std::vector<net::Asn> peers_;
  std::vector<RibRow> table_;  // sorted by prefix, unique
  std::vector<Staged> staged_;
};

}  // namespace manrs::bgp
