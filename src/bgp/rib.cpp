#include "bgp/rib.h"

#include <algorithm>

namespace manrs::bgp {

std::string AsPath::to_string() const {
  std::string out;
  for (size_t i = 0; i < hops_.size(); ++i) {
    if (i) out += ' ';
    out += "AS" + std::to_string(hops_[i].value());
  }
  return out;
}

uint32_t Rib::add_peer(net::Asn peer_asn) {
  peers_.push_back(peer_asn);
  return static_cast<uint32_t>(peers_.size() - 1);
}

void Rib::insert(const net::Prefix& prefix, uint32_t peer_index,
                 AsPath path) {
  auto& entries = table_[prefix];
  for (auto& e : entries) {
    if (e.peer_index == peer_index) {
      e.path = std::move(path);
      return;
    }
  }
  entries.push_back(RibEntry{peer_index, std::move(path)});
}

void Rib::insert_many(const net::Prefix& prefix,
                      std::span<const RibEntry> new_entries) {
  auto& entries = table_[prefix];
  entries.reserve(entries.size() + new_entries.size());
  for (const auto& incoming : new_entries) {
    bool replaced = false;
    for (auto& e : entries) {
      if (e.peer_index == incoming.peer_index) {
        e.path = incoming.path;
        replaced = true;
        break;
      }
    }
    if (!replaced) entries.push_back(incoming);
  }
}

size_t Rib::entry_count() const {
  size_t n = 0;
  for (const auto& [_, entries] : table_) n += entries.size();
  return n;
}

const std::vector<RibEntry>& Rib::entries(const net::Prefix& prefix) const {
  static const std::vector<RibEntry> kEmpty;
  auto it = table_.find(prefix);
  return it == table_.end() ? kEmpty : it->second;
}

std::vector<PrefixOrigin> Rib::prefix_origins() const {
  std::vector<PrefixOrigin> out;
  for (const auto& [prefix, entries] : table_) {
    std::vector<net::Asn> origins;
    for (const auto& e : entries) {
      if (auto origin = e.path.origin()) origins.push_back(*origin);
    }
    std::sort(origins.begin(), origins.end());
    origins.erase(std::unique(origins.begin(), origins.end()), origins.end());
    for (net::Asn o : origins) out.push_back(PrefixOrigin{prefix, o});
  }
  return out;
}

std::vector<net::Prefix> Rib::prefixes_originated_by(net::Asn asn) const {
  std::vector<net::Prefix> out;
  for (const auto& [prefix, entries] : table_) {
    for (const auto& e : entries) {
      if (e.path.origin() == asn) {
        out.push_back(prefix);
        break;
      }
    }
  }
  return out;
}

}  // namespace manrs::bgp
