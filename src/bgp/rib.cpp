#include "bgp/rib.h"

#include <algorithm>

namespace manrs::bgp {

std::string AsPath::to_string() const {
  std::string out;
  for (size_t i = 0; i < hops_.size(); ++i) {
    if (i) out += ' ';
    out += "AS" + std::to_string(hops_[i].value());
  }
  return out;
}

uint32_t Rib::add_peer(net::Asn peer_asn) {
  peers_.push_back(peer_asn);
  return static_cast<uint32_t>(peers_.size() - 1);
}

uint32_t Rib::find_or_add_peer(net::Asn peer_asn) {
  for (size_t i = 0; i < peers_.size(); ++i) {
    if (peers_[i] == peer_asn) return static_cast<uint32_t>(i);
  }
  return add_peer(peer_asn);
}

void Rib::insert(const net::Prefix& prefix, uint32_t peer_index,
                 AsPath path) {
  staged_.push_back(Staged{prefix, RibEntry{peer_index, std::move(path)}});
}

void Rib::insert_many(const net::Prefix& prefix,
                      std::span<const RibEntry> new_entries) {
  staged_.reserve(staged_.size() + new_entries.size());
  for (const auto& incoming : new_entries) {
    staged_.push_back(Staged{prefix, incoming});
  }
}

void Rib::erase(const net::Prefix& prefix, uint32_t peer_index) {
  staged_.push_back(Staged{prefix, RibEntry{peer_index, AsPath{}}, true});
}

void Rib::apply_entry(std::vector<RibEntry>& entries, Staged&& staged) {
  for (auto it = entries.begin(); it != entries.end(); ++it) {
    if (it->peer_index == staged.entry.peer_index) {
      if (staged.erase) {
        entries.erase(it);
      } else {
        it->path = std::move(staged.entry.path);
      }
      return;
    }
  }
  // Withdrawing a path the peer never announced is an idempotent no-op.
  if (!staged.erase) entries.push_back(std::move(staged.entry));
}

bool Rib::staged_is_noop() const {
  for (const Staged& s : staged_) {
    auto it = std::lower_bound(table_.begin(), table_.end(), s.prefix,
                               [](const RibRow& row, const net::Prefix& p) {
                                 return row.prefix < p;
                               });
    const RibEntry* entry = nullptr;
    if (it != table_.end() && it->prefix == s.prefix) {
      for (const RibEntry& e : it->entries) {
        if (e.peer_index == s.entry.peer_index) {
          entry = &e;
          break;
        }
      }
    }
    if (s.erase) {
      if (entry != nullptr) return false;  // a real removal
    } else {
      if (entry == nullptr || !(entry->path == s.entry.path)) return false;
    }
  }
  return true;
}

void Rib::finalize() {
  if (staged_.empty()) return;
  // Effective-no-op fast path: a batch of withdraw-of-absent and
  // re-announce-of-identical-path ops leaves the table byte-identical, so
  // skip the sort and merge entirely -- no row churn, and references into
  // the table stay valid. Sound to check each op against the pre-batch
  // table alone: an op that is a no-op leaves the table unchanged for the
  // next op's check. The scan bails at the first effective op, so real
  // update batches pay about one lookup before merging as before.
  if (staged_is_noop()) {
    staged_.clear();
    staged_.shrink_to_fit();
    return;
  }
  // Stable sort groups staged entries by prefix while keeping insertion
  // order inside each group -- the order the replace-per-peer rule is
  // defined over.
  std::stable_sort(staged_.begin(), staged_.end(),
                   [](const Staged& a, const Staged& b) {
                     return a.prefix < b.prefix;
                   });

  // Two-way merge of the sorted table and the sorted staged runs.
  std::vector<RibRow> merged;
  merged.reserve(table_.size() + staged_.size());
  size_t ti = 0;
  size_t si = 0;
  while (ti < table_.size() || si < staged_.size()) {
    if (si >= staged_.size() ||
        (ti < table_.size() && table_[ti].prefix < staged_[si].prefix)) {
      merged.push_back(std::move(table_[ti++]));
      continue;
    }
    const net::Prefix prefix = staged_[si].prefix;
    RibRow row;
    row.prefix = prefix;
    if (ti < table_.size() && table_[ti].prefix == prefix) {
      row.entries = std::move(table_[ti++].entries);
    }
    while (si < staged_.size() && staged_[si].prefix == prefix) {
      apply_entry(row.entries, std::move(staged_[si++]));
    }
    // A row drained by staged withdrawals leaves the table entirely
    // (the invariant is that every table row has at least one entry).
    if (!row.entries.empty()) merged.push_back(std::move(row));
  }
  table_ = std::move(merged);
  staged_.clear();
  staged_.shrink_to_fit();
}

void Rib::clear() {
  table_.clear();
  staged_.clear();
}

void Rib::adopt_rows(std::vector<RibRow> rows) {
  table_ = std::move(rows);
  staged_.clear();
  staged_.shrink_to_fit();
}

size_t Rib::prefix_count() const {
  ensure_finalized();
  return table_.size();
}

size_t Rib::entry_count() const {
  ensure_finalized();
  size_t n = 0;
  for (const RibRow& row : table_) n += row.entries.size();
  return n;
}

const std::vector<RibEntry>& Rib::entries(const net::Prefix& prefix) const {
  static const std::vector<RibEntry> kEmpty;
  ensure_finalized();
  auto it = std::lower_bound(table_.begin(), table_.end(), prefix,
                             [](const RibRow& row, const net::Prefix& p) {
                               return row.prefix < p;
                             });
  if (it == table_.end() || it->prefix != prefix) return kEmpty;
  return it->entries;
}

std::vector<PrefixOrigin> Rib::prefix_origins() const {
  ensure_finalized();
  std::vector<PrefixOrigin> out;
  for (const RibRow& row : table_) {
    std::vector<net::Asn> origins;
    for (const auto& e : row.entries) {
      if (auto origin = e.path.origin()) origins.push_back(*origin);
    }
    std::sort(origins.begin(), origins.end());
    origins.erase(std::unique(origins.begin(), origins.end()), origins.end());
    for (net::Asn o : origins) out.push_back(PrefixOrigin{row.prefix, o});
  }
  return out;
}

std::vector<net::Prefix> Rib::prefixes_originated_by(net::Asn asn) const {
  ensure_finalized();
  std::vector<net::Prefix> out;
  for (const RibRow& row : table_) {
    for (const auto& e : row.entries) {
      if (e.path.origin() == asn) {
        out.push_back(row.prefix);
        break;
      }
    }
  }
  return out;
}

}  // namespace manrs::bgp
