#include "rpki/validation.h"

namespace manrs::rpki {

std::string_view to_string(RpkiStatus s) {
  switch (s) {
    case RpkiStatus::kValid:
      return "Valid";
    case RpkiStatus::kInvalidAsn:
      return "Invalid";
    case RpkiStatus::kInvalidLength:
      return "InvalidLength";
    case RpkiStatus::kNotFound:
      return "NotFound";
  }
  return "?";
}

void VrpStore::add(const Vrp& vrp) { trie_.insert(vrp.prefix, vrp); }

void VrpStore::add_all(const std::vector<Vrp>& vrps) {
  for (const auto& v : vrps) add(v);
}

size_t VrpStore::finalize_delta() {
  size_t applied = 0;
  for (const StagedOp& op : staged_) {
    if (op.add) {
      trie_.insert(op.vrp.prefix, op.vrp);
      ++applied;
    } else {
      applied += trie_.erase_at(op.vrp.prefix,
                                [&](const Vrp& v) { return v == op.vrp; });
    }
  }
  staged_.clear();
  return applied;
}

RpkiStatus VrpStore::validate(const net::Prefix& route,
                              net::Asn origin) const {
  bool any_covering = false;
  bool asn_match = false;
  bool valid = false;
  trie_.for_each_covering(route, [&](unsigned, const Vrp& vrp) {
    any_covering = true;
    if (vrp.asn == origin && !vrp.asn.is_reserved_as0()) {
      asn_match = true;
      if (vrp.max_length >= route.length()) valid = true;
    }
  });
  if (!any_covering) return RpkiStatus::kNotFound;
  if (valid) return RpkiStatus::kValid;
  if (asn_match) return RpkiStatus::kInvalidLength;
  return RpkiStatus::kInvalidAsn;
}

std::vector<Vrp> VrpStore::covering(const net::Prefix& route) const {
  return trie_.covering(route);
}

}  // namespace manrs::rpki
