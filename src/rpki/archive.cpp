#include "rpki/archive.h"

#include <istream>
#include <ostream>

#include "util/bytes.h"
#include "util/csv.h"
#include "util/strings.h"

namespace manrs::rpki {

void write_vrp_csv(std::ostream& out, const std::vector<Vrp>& vrps,
                   const util::Date& snapshot) {
  util::CsvWriter writer(out);
  writer.write_row(std::vector<std::string_view>{
      "URI", "ASN", "IP Prefix", "Max Length", "Not Before", "Not After"});
  util::Date not_before = snapshot.add_months(-12);
  util::Date not_after = snapshot.add_months(12);
  size_t n = 0;
  for (const auto& vrp : vrps) {
    std::string uri = "rsync://rpki." +
                      util::to_lower(net::rir_name(vrp.trust_anchor)) +
                      ".net/repo/roa-" + std::to_string(n++) + ".roa";
    writer.write_row(std::vector<std::string_view>{
        uri, vrp.asn.to_string(), vrp.prefix.to_string(),
        std::to_string(vrp.max_length), not_before.to_string(),
        not_after.to_string()});
  }
}

std::optional<Vrp> parse_vrp_row(const std::vector<std::string>& row) {
  if (!row.empty() && util::iequals(row[0], "URI")) return std::nullopt;
  if (row.size() < 4) {
    throw util::ParseError("VRP row has " + std::to_string(row.size()) +
                           " columns, need at least 4");
  }
  auto asn = net::Asn::parse(row[1]);
  if (!asn) throw util::ParseError("bad ASN column: '" + row[1] + "'");
  auto prefix = net::Prefix::parse(row[2]);
  if (!prefix) throw util::ParseError("bad prefix column: '" + row[2] + "'");
  auto maxlen = util::parse_uint<unsigned>(util::trim(row[3]));
  if (!maxlen) {
    throw util::ParseError("bad max-length column: '" + row[3] + "'");
  }
  net::Rir anchor = net::Rir::kRipe;
  // Recover the trust anchor from the URI when it follows the synthetic
  // scheme; real archives carry it in per-TA directories.
  for (net::Rir r : net::kAllRirs) {
    if (row[0].find(util::to_lower(net::rir_name(r))) != std::string::npos) {
      anchor = r;
      break;
    }
  }
  Vrp vrp{*prefix, *maxlen, *asn, anchor};
  if (!vrp.well_formed()) {
    throw util::ParseError("max length " + std::to_string(*maxlen) +
                           " outside [" + std::to_string(prefix->length()) +
                           ", " +
                           std::to_string(net::family_bits(prefix->family())) +
                           "] for " + prefix->to_string());
  }
  return vrp;
}

std::vector<Vrp> read_vrp_csv(std::istream& in, VrpCsvStats& stats) {
  util::CsvReader reader(in, ',', '#');
  std::vector<Vrp> vrps;
  util::CsvRow row;
  while (reader.next(row)) {
    try {
      auto vrp = parse_vrp_row(row);
      if (!vrp) continue;  // header
      ++stats.rows;
      vrps.push_back(*vrp);
    } catch (const util::ParseError& e) {
      ++stats.rows;
      ++stats.skipped;
      if (stats.first_error.empty()) {
        stats.first_error =
            "line " + std::to_string(reader.line_number()) + ": " + e.what();
      }
    }
  }
  return vrps;
}

std::vector<Vrp> read_vrp_csv(std::istream& in, size_t* skipped) {
  VrpCsvStats stats;
  auto vrps = read_vrp_csv(in, stats);
  if (skipped) *skipped = stats.skipped;
  return vrps;
}

void RpkiArchiveSeries::add_snapshot(const util::Date& date,
                                     std::vector<Vrp> vrps) {
  snapshots_[date] = std::move(vrps);
}

const std::vector<Vrp>* RpkiArchiveSeries::at(const util::Date& date) const {
  auto it = snapshots_.find(date);
  return it == snapshots_.end() ? nullptr : &it->second;
}

const std::vector<Vrp>* RpkiArchiveSeries::at_or_before(
    const util::Date& date) const {
  auto it = snapshots_.upper_bound(date);
  if (it == snapshots_.begin()) return nullptr;
  --it;
  return &it->second;
}

std::vector<util::Date> RpkiArchiveSeries::dates() const {
  std::vector<util::Date> out;
  out.reserve(snapshots_.size());
  for (const auto& [d, _] : snapshots_) out.push_back(d);
  return out;
}

}  // namespace manrs::rpki
