#include "rpki/archive.h"

#include <istream>
#include <ostream>

#include "util/csv.h"
#include "util/strings.h"

namespace manrs::rpki {

void write_vrp_csv(std::ostream& out, const std::vector<Vrp>& vrps,
                   const util::Date& snapshot) {
  util::CsvWriter writer(out);
  writer.write_row(std::vector<std::string_view>{
      "URI", "ASN", "IP Prefix", "Max Length", "Not Before", "Not After"});
  util::Date not_before = snapshot.add_months(-12);
  util::Date not_after = snapshot.add_months(12);
  size_t n = 0;
  for (const auto& vrp : vrps) {
    std::string uri = "rsync://rpki." +
                      util::to_lower(net::rir_name(vrp.trust_anchor)) +
                      ".net/repo/roa-" + std::to_string(n++) + ".roa";
    writer.write_row(std::vector<std::string_view>{
        uri, vrp.asn.to_string(), vrp.prefix.to_string(),
        std::to_string(vrp.max_length), not_before.to_string(),
        not_after.to_string()});
  }
}

std::vector<Vrp> read_vrp_csv(std::istream& in, size_t* skipped) {
  util::CsvReader reader(in, ',', '#');
  std::vector<Vrp> vrps;
  size_t bad = 0;
  util::CsvRow row;
  while (reader.next(row)) {
    if (row.size() < 4) {
      ++bad;
      continue;
    }
    if (util::iequals(row[0], "URI")) continue;  // header
    auto asn = net::Asn::parse(row[1]);
    auto prefix = net::Prefix::parse(row[2]);
    auto maxlen = util::parse_uint<unsigned>(util::trim(row[3]));
    if (!asn || !prefix || !maxlen) {
      ++bad;
      continue;
    }
    net::Rir anchor = net::Rir::kRipe;
    // Recover the trust anchor from the URI when it follows the synthetic
    // scheme; real archives carry it in per-TA directories.
    for (net::Rir r : net::kAllRirs) {
      if (row[0].find(util::to_lower(net::rir_name(r))) !=
          std::string::npos) {
        anchor = r;
        break;
      }
    }
    Vrp vrp{*prefix, *maxlen, *asn, anchor};
    if (!vrp.well_formed()) {
      ++bad;
      continue;
    }
    vrps.push_back(vrp);
  }
  if (skipped) *skipped = bad;
  return vrps;
}

void RpkiArchiveSeries::add_snapshot(const util::Date& date,
                                     std::vector<Vrp> vrps) {
  snapshots_[date] = std::move(vrps);
}

const std::vector<Vrp>* RpkiArchiveSeries::at(const util::Date& date) const {
  auto it = snapshots_.find(date);
  return it == snapshots_.end() ? nullptr : &it->second;
}

const std::vector<Vrp>* RpkiArchiveSeries::at_or_before(
    const util::Date& date) const {
  auto it = snapshots_.upper_bound(date);
  if (it == snapshots_.begin()) return nullptr;
  --it;
  return &it->second;
}

std::vector<util::Date> RpkiArchiveSeries::dates() const {
  std::vector<util::Date> out;
  out.reserve(snapshots_.size());
  for (const auto& [d, _] : snapshots_) out.push_back(d);
  return out;
}

}  // namespace manrs::rpki
