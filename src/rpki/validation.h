// RFC 6811 route origin validation.
//
// Implements the prefix-origin classification of §6.1 of the paper:
//   Valid          - at least one covering VRP matches ASN and max length
//   Invalid (ASN)  - covering VRPs exist but none matches the origin ASN
//   Invalid Length - some VRP matches the ASN but its max length does not
//                    cover the announced prefix
//   Not Found      - no covering VRP
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "netbase/asn.h"
#include "netbase/prefix.h"
#include "netbase/prefix_trie.h"
#include "rpki/vrp.h"

namespace manrs::rpki {

enum class RpkiStatus : uint8_t {
  kValid = 0,
  kInvalidAsn = 1,
  kInvalidLength = 2,
  kNotFound = 3,
};

std::string_view to_string(RpkiStatus s);

/// True for both flavours of Invalid; the paper's propagation-invalidity
/// metric (Formula 4) counts Invalid plus Invalid Length.
inline bool is_invalid(RpkiStatus s) {
  return s == RpkiStatus::kInvalidAsn || s == RpkiStatus::kInvalidLength;
}

/// Immutable, trie-indexed set of VRPs with the RFC 6811 decision
/// procedure. Build once per snapshot, then validate any number of routes.
class VrpStore {
 public:
  VrpStore() = default;
  explicit VrpStore(const std::vector<Vrp>& vrps) { add_all(vrps); }

  void add(const Vrp& vrp);
  void add_all(const std::vector<Vrp>& vrps);

  /// --- staged delta application (temporal snapshot engine) --------------
  /// The ROA-table equivalent of Rib::begin_delta()/finalize(): a day's
  /// ROA churn queues here and lands in one finalize_delta() call, so the
  /// trie is edited in place instead of rebuilt. Queries issued between
  /// stage_*() calls still see the pre-delta table.
  void stage_add(const Vrp& vrp) { staged_.push_back(StagedOp{vrp, true}); }
  void stage_remove(const Vrp& vrp) { staged_.push_back(StagedOp{vrp, false}); }
  size_t staged_count() const { return staged_.size(); }

  /// Apply staged operations in order. Removals erase VRPs equal in every
  /// field; removing an absent VRP is a no-op. Returns the number of table
  /// mutations actually performed.
  size_t finalize_delta();

  size_t size() const { return trie_.size(); }
  bool empty() const { return trie_.empty(); }

  /// RFC 6811 classification of (prefix, origin).
  RpkiStatus validate(const net::Prefix& route, net::Asn origin) const;

  /// All VRPs covering `route` (any ASN), least specific first.
  std::vector<Vrp> covering(const net::Prefix& route) const;

  /// True iff any VRP covers `route` (the "has a ROA" test used by the
  /// RPKI-saturation analysis, Formula 7/8).
  bool covered(const net::Prefix& route) const {
    return trie_.any_covering(route);
  }

  /// Visit every VRP.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    trie_.for_each(fn);
  }

 private:
  struct StagedOp {
    Vrp vrp;
    bool add;
  };

  net::PrefixTrie<Vrp> trie_;
  std::vector<StagedOp> staged_;
};

}  // namespace manrs::rpki
