// Route Origin Authorization (ROA) and a lightweight model of the RPKI
// certificate hierarchy.
//
// The paper consumes *validated* ROA archives, i.e. the output of relying-
// party (RP) software that has already checked the certificate chain. To
// exercise that code path we model the chain itself: each RIR is a trust
// anchor holding its address space; resource certificates delegate subsets
// of that space; ROAs are signed under a certificate and are only accepted
// by the RelyingParty if every announced prefix is covered by the signing
// certificate's resources and the validity window contains the validation
// date. Cryptography is abstracted to a boolean signature-validity flag --
// what RP software outcome depends on, not the math itself.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netbase/asn.h"
#include "netbase/prefix.h"
#include "netbase/rir.h"
#include "rpki/vrp.h"
#include "util/date.h"

namespace manrs::rpki {

/// One (prefix, maxLength) element of a ROA.
struct RoaPrefix {
  net::Prefix prefix;
  /// 0 means "not set": per RFC 6482 the max length then defaults to the
  /// prefix length.
  unsigned max_length = 0;

  unsigned effective_max_length() const {
    return max_length == 0 ? prefix.length() : max_length;
  }
};

/// An X.509 resource certificate, reduced to what validation needs.
struct ResourceCertificate {
  uint64_t serial = 0;
  net::Rir trust_anchor = net::Rir::kRipe;
  /// IP resources this certificate is entitled to sign for.
  std::vector<net::Prefix> resources;
  util::Date not_before;
  util::Date not_after;
  /// Models an intact signature chain back to the trust anchor. Real RP
  /// software computes this from crypto; the measurement pipeline only
  /// consumes the outcome.
  bool signature_valid = true;

  bool covers(const net::Prefix& p) const {
    for (const auto& r : resources) {
      if (r.contains(p)) return true;
    }
    return false;
  }

  bool valid_at(const util::Date& date) const {
    return signature_valid && not_before <= date && date <= not_after;
  }
};

/// A ROA object: one origin ASN authorized for a set of prefixes.
struct Roa {
  net::Asn asn;
  std::vector<RoaPrefix> prefixes;
  /// Index of the signing certificate in the RelyingParty's store.
  uint64_t certificate_serial = 0;
};

/// Outcome of RP validation of one ROA.
enum class RoaValidity : uint8_t {
  kAccepted,
  kExpiredCertificate,
  kBadSignature,
  kResourceOverclaim,  // a prefix not covered by the certificate
  kMalformed,          // max length below prefix length or above width
  kUnknownCertificate,
};

std::string to_string(RoaValidity v);

/// Relying-party software: holds certificates and ROAs, and emits VRPs for
/// ROAs that validate (RFC 6487/6482 checks, abstracted as above).
class RelyingParty {
 public:
  /// Register a certificate; returns false if the serial already exists.
  bool add_certificate(ResourceCertificate cert);
  void add_roa(Roa roa);

  size_t certificate_count() const { return certs_.size(); }
  size_t roa_count() const { return roas_.size(); }

  /// Validate a single ROA at `date` without storing it.
  RoaValidity validate_roa(const Roa& roa, const util::Date& date) const;

  /// Run validation over all stored ROAs; emits one VRP per (prefix,
  /// maxlen) of each accepted ROA. Rejected ROAs contribute nothing (and
  /// are counted in `rejected`, if provided).
  std::vector<Vrp> evaluate(const util::Date& date,
                            size_t* rejected = nullptr) const;

 private:
  std::vector<ResourceCertificate> certs_;
  std::vector<Roa> roas_;
};

}  // namespace manrs::rpki
