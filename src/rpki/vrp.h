// Validated ROA Payload (VRP).
//
// A VRP is the unit the RFC 6811 origin-validation algorithm consumes:
// (prefix, max length, origin ASN), produced by relying-party software
// after walking the RPKI certificate chain. See §2.3 of the paper.
#pragma once

#include <compare>
#include <string>

#include "netbase/asn.h"
#include "netbase/prefix.h"
#include "netbase/rir.h"

namespace manrs::rpki {

struct Vrp {
  net::Prefix prefix;
  unsigned max_length = 0;
  net::Asn asn;
  /// Which of the five trust anchors this VRP descends from.
  net::Rir trust_anchor = net::Rir::kRipe;

  /// A VRP is well-formed when max_length lies in
  /// [prefix.length(), family width].
  bool well_formed() const {
    return max_length >= prefix.length() &&
           max_length <= net::family_bits(prefix.family());
  }

  /// True iff this VRP covers `route` (prefix containment only; ASN and
  /// length checks are the validator's job).
  bool covers(const net::Prefix& route) const {
    return prefix.contains(route);
  }

  std::string to_string() const;

  friend auto operator<=>(const Vrp&, const Vrp&) = default;
};

inline std::string Vrp::to_string() const {
  return prefix.to_string() + "-" + std::to_string(max_length) + " " +
         asn.to_string();
}

}  // namespace manrs::rpki
