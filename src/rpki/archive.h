// Validated-ROA archive I/O in the RIPE NCC export format.
//
// RIPE publishes daily "validated ROA" CSVs with the header
//   URI,ASN,IP Prefix,Max Length,Not Before,Not After
// (https://ftp.ripe.net/ripe/rpki). The paper downloads monthly snapshots
// of these from 2014-2022 (its "RPKI dataset"). We read and write the same
// format so the pipeline is byte-compatible with the real archives.
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "rpki/vrp.h"
#include "util/date.h"

namespace manrs::rpki {

/// Write VRPs as a RIPE-style CSV (header included). The URI column is
/// synthesized as "rsync://rpki.<rir>.net/roa-<n>.roa"; Not Before / Not
/// After bracket `snapshot` by one year, matching typical ROA validity.
void write_vrp_csv(std::ostream& out, const std::vector<Vrp>& vrps,
                   const util::Date& snapshot);

/// Parse one CSV row (URI,ASN,IP Prefix,Max Length,...) into a Vrp.
/// Throws util::ParseError naming the offending column for short rows,
/// unparseable fields, and max-length values outside
/// [prefix length, family width]. Returns nullopt only for the header row.
std::optional<Vrp> parse_vrp_row(const std::vector<std::string>& row);

/// Row-level accounting for a CSV read; `first_error` keeps the first
/// typed parse failure for diagnostics.
struct VrpCsvStats {
  size_t rows = 0;     // data rows seen (header excluded)
  size_t skipped = 0;  // rows rejected with a parse error
  std::string first_error;
};

/// Parse a RIPE-style CSV. Unparseable rows are skipped and counted in
/// `skipped` (if provided); the header row is detected and ignored.
std::vector<Vrp> read_vrp_csv(std::istream& in, size_t* skipped = nullptr);

/// As above, with full row accounting.
std::vector<Vrp> read_vrp_csv(std::istream& in, VrpCsvStats& stats);

/// A dated series of VRP snapshots (the paper's monthly/annual archives).
class RpkiArchiveSeries {
 public:
  void add_snapshot(const util::Date& date, std::vector<Vrp> vrps);

  /// The snapshot at `date` exactly, if present.
  const std::vector<Vrp>* at(const util::Date& date) const;

  /// The latest snapshot with date <= `date` (how the paper pairs annual
  /// prefix2as snapshots with "RPKI dataset snapshots with matching
  /// dates"). Returns nullptr if none.
  const std::vector<Vrp>* at_or_before(const util::Date& date) const;

  std::vector<util::Date> dates() const;
  size_t size() const { return snapshots_.size(); }

 private:
  std::map<util::Date, std::vector<Vrp>> snapshots_;
};

}  // namespace manrs::rpki
