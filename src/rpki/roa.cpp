#include "rpki/roa.h"

#include <algorithm>
#include <unordered_map>

namespace manrs::rpki {

std::string to_string(RoaValidity v) {
  switch (v) {
    case RoaValidity::kAccepted:
      return "accepted";
    case RoaValidity::kExpiredCertificate:
      return "expired-certificate";
    case RoaValidity::kBadSignature:
      return "bad-signature";
    case RoaValidity::kResourceOverclaim:
      return "resource-overclaim";
    case RoaValidity::kMalformed:
      return "malformed";
    case RoaValidity::kUnknownCertificate:
      return "unknown-certificate";
  }
  return "?";
}

bool RelyingParty::add_certificate(ResourceCertificate cert) {
  for (const auto& existing : certs_) {
    if (existing.serial == cert.serial) return false;
  }
  certs_.push_back(std::move(cert));
  return true;
}

void RelyingParty::add_roa(Roa roa) { roas_.push_back(std::move(roa)); }

RoaValidity RelyingParty::validate_roa(const Roa& roa,
                                       const util::Date& date) const {
  const ResourceCertificate* cert = nullptr;
  for (const auto& c : certs_) {
    if (c.serial == roa.certificate_serial) {
      cert = &c;
      break;
    }
  }
  if (!cert) return RoaValidity::kUnknownCertificate;
  if (!cert->signature_valid) return RoaValidity::kBadSignature;
  if (!(cert->not_before <= date && date <= cert->not_after)) {
    return RoaValidity::kExpiredCertificate;
  }
  for (const auto& rp : roa.prefixes) {
    unsigned eff = rp.effective_max_length();
    if (eff < rp.prefix.length() ||
        eff > net::family_bits(rp.prefix.family())) {
      return RoaValidity::kMalformed;
    }
    if (!cert->covers(rp.prefix)) return RoaValidity::kResourceOverclaim;
  }
  return RoaValidity::kAccepted;
}

std::vector<Vrp> RelyingParty::evaluate(const util::Date& date,
                                        size_t* rejected) const {
  // Index certificates once; evaluate() is called per snapshot over
  // thousands of ROAs.
  std::unordered_map<uint64_t, const ResourceCertificate*> by_serial;
  by_serial.reserve(certs_.size());
  for (const auto& c : certs_) by_serial.emplace(c.serial, &c);

  std::vector<Vrp> vrps;
  size_t rejected_count = 0;
  for (const auto& roa : roas_) {
    auto it = by_serial.find(roa.certificate_serial);
    const ResourceCertificate* cert =
        it == by_serial.end() ? nullptr : it->second;
    bool ok = cert != nullptr && cert->valid_at(date);
    if (ok) {
      for (const auto& rp : roa.prefixes) {
        unsigned eff = rp.effective_max_length();
        if (eff < rp.prefix.length() ||
            eff > net::family_bits(rp.prefix.family()) ||
            !cert->covers(rp.prefix)) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) {
      ++rejected_count;
      continue;
    }
    for (const auto& rp : roa.prefixes) {
      vrps.push_back(Vrp{rp.prefix, rp.effective_max_length(), roa.asn,
                         cert->trust_anchor});
    }
  }
  if (rejected) *rejected = rejected_count;
  return vrps;
}

}  // namespace manrs::rpki
