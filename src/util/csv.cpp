#include "util/csv.h"

#include <sstream>

#include "util/strings.h"

namespace manrs::util {

CsvReader::CsvReader(std::istream& in, char delim, char comment)
    : in_(in), delim_(delim), comment_(comment) {}

bool CsvReader::next(CsvRow& row) {
  row.clear();
  std::string line;
  // Skip comment lines and blank lines.
  while (true) {
    if (!std::getline(in_, line)) return false;
    ++line_;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (comment_ != '\0') {
      std::string_view t = trim(line);
      if (!t.empty() && t.front() == comment_) continue;
    }
    break;
  }

  std::string field;
  bool in_quotes = false;
  size_t i = 0;
  while (true) {
    if (i >= line.size()) {
      if (in_quotes) {
        // Quoted field spans a physical newline: pull the next line.
        std::string cont;
        if (!std::getline(in_, cont)) break;  // tolerate unterminated quote
        ++line_;
        if (!cont.empty() && cont.back() == '\r') cont.pop_back();
        field.push_back('\n');
        line = std::move(cont);
        i = 0;
        continue;
      }
      break;
    }
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field.push_back(c);
        ++i;
      }
    } else if (c == '"' && field.empty()) {
      in_quotes = true;
      ++i;
    } else if (c == delim_) {
      row.push_back(std::move(field));
      field.clear();
      ++i;
    } else {
      field.push_back(c);
      ++i;
    }
  }
  row.push_back(std::move(field));
  return true;
}

CsvWriter::CsvWriter(std::ostream& out, char delim) : out_(out), delim_(delim) {}

void CsvWriter::write_field(std::string_view f) {
  bool needs_quotes = f.find(delim_) != std::string_view::npos ||
                      f.find('"') != std::string_view::npos ||
                      f.find('\n') != std::string_view::npos ||
                      f.find('\r') != std::string_view::npos;
  if (!needs_quotes) {
    out_ << f;
    return;
  }
  out_ << '"';
  for (char c : f) {
    if (c == '"') out_ << '"';
    out_ << c;
  }
  out_ << '"';
}

void CsvWriter::write_row(const std::vector<std::string_view>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << delim_;
    write_field(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const CsvRow& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << delim_;
    write_field(fields[i]);
  }
  out_ << '\n';
}

std::vector<CsvRow> parse_csv(std::string_view text, char delim,
                              char comment) {
  std::istringstream in{std::string(text)};
  CsvReader reader(in, delim, comment);
  std::vector<CsvRow> rows;
  CsvRow row;
  while (reader.next(row)) rows.push_back(row);
  return rows;
}

}  // namespace manrs::util
