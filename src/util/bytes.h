// Bounds-checked byte-level reading and writing for wire-format codecs.
//
// Every from-scratch binary parser in the pipeline (MRT TABLE_DUMP_V2,
// BGP4MP, and any future wire format) decodes through ByteCursor, and every
// encoder accumulates through ByteBuf. The contract:
//
//   * ByteCursor never reads out of bounds. The throwing accessors (u8(),
//     u16(), ...) raise ParseError on truncation; the try_* accessors
//     return std::nullopt instead. Parse loops that unwind to a per-record
//     error boundary use the throwing form; probe-style callers use try_*.
//   * All multi-byte integers are big-endian (network order). There is no
//     host-endian accessor on purpose: wire formats name their endianness.
//   * No pointer arithmetic or reinterpret_cast in client code. The only
//     sanctioned byte<->char aliasing in the codebase lives in bytes.cpp
//     (the iostream bridge below); tools/lint_wire.py enforces this.
//
// See docs/static-analysis.md for the full API contract and the list of
// banned patterns this layer replaces.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace manrs::util {

/// Typed error for malformed external input (wire records, registry rows,
/// archive lines). Parsers throw ParseError -- never index out of bounds,
/// never silently truncate -- and record-stream readers convert it into a
/// counted per-record failure so one corrupt record cannot take down a
/// whole scan.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Bounds-checked forward cursor over an immutable byte span.
///
/// The cursor does not own the bytes; the underlying buffer must outlive
/// it (same lifetime rule as std::span / std::string_view).
class ByteCursor {
 public:
  constexpr ByteCursor() = default;
  explicit constexpr ByteCursor(std::span<const uint8_t> data)
      : data_(data) {}

  constexpr size_t size() const { return data_.size(); }
  constexpr size_t position() const { return pos_; }
  constexpr size_t remaining() const { return data_.size() - pos_; }
  constexpr bool done() const { return pos_ == data_.size(); }

  /// True iff at least `n` more bytes can be read.
  constexpr bool can_read(size_t n) const { return remaining() >= n; }

  // --- throwing reads (ParseError on truncation) -----------------------
  uint8_t u8() {
    need(1, "u8");
    return data_[pos_++];
  }
  uint16_t u16() {
    need(2, "u16");
    uint16_t v = static_cast<uint16_t>(
        static_cast<uint16_t>(data_[pos_]) << 8 |
        static_cast<uint16_t>(data_[pos_ + 1]));
    pos_ += 2;
    return v;
  }
  uint32_t u32() {
    need(4, "u32");
    uint32_t v = static_cast<uint32_t>(data_[pos_]) << 24 |
                 static_cast<uint32_t>(data_[pos_ + 1]) << 16 |
                 static_cast<uint32_t>(data_[pos_ + 2]) << 8 |
                 static_cast<uint32_t>(data_[pos_ + 3]);
    pos_ += 4;
    return v;
  }
  uint64_t u64() {
    need(8, "u64");
    uint64_t hi = u32();
    return (hi << 32) | u32();
  }

  /// View of the next `n` bytes; advances past them.
  std::span<const uint8_t> bytes(size_t n) {
    need(n, "bytes");
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  /// The next `n` bytes as text (e.g. an embedded name field). The view
  /// aliases the underlying buffer.
  std::string_view ascii(size_t n);

  void skip(size_t n) {
    need(n, "skip");
    pos_ += n;
  }

  /// Carve the next `n` bytes out as an independent child cursor. This is
  /// the safe replacement for "end = position() + declared_len" index
  /// arithmetic: a nested structure parses against its declared extent and
  /// cannot overrun into sibling data.
  ByteCursor sub(size_t n) {
    return ByteCursor(bytes(n));
  }

  // --- fallible reads (nullopt on truncation) --------------------------
  std::optional<uint8_t> try_u8() {
    if (!can_read(1)) return std::nullopt;
    return u8();
  }
  std::optional<uint16_t> try_u16() {
    if (!can_read(2)) return std::nullopt;
    return u16();
  }
  std::optional<uint32_t> try_u32() {
    if (!can_read(4)) return std::nullopt;
    return u32();
  }
  std::optional<uint64_t> try_u64() {
    if (!can_read(8)) return std::nullopt;
    return u64();
  }
  std::optional<std::span<const uint8_t>> try_bytes(size_t n) {
    if (!can_read(n)) return std::nullopt;
    return bytes(n);
  }

 private:
  void need(size_t n, const char* what) const {
    if (data_.size() - pos_ < n) {
      throw ParseError(std::string("truncated input: ") + what + " needs " +
                       std::to_string(n) + " bytes, have " +
                       std::to_string(data_.size() - pos_));
    }
  }
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

/// Growing byte buffer with big-endian writers; the encoding counterpart
/// of ByteCursor.
class ByteBuf {
 public:
  void u8(uint8_t v) { buf_.push_back(v); }
  void u16(uint16_t v) {
    buf_.push_back(static_cast<uint8_t>(v >> 8));
    buf_.push_back(static_cast<uint8_t>(v));
  }
  void u32(uint32_t v) {
    buf_.push_back(static_cast<uint8_t>(v >> 24));
    buf_.push_back(static_cast<uint8_t>(v >> 16));
    buf_.push_back(static_cast<uint8_t>(v >> 8));
    buf_.push_back(static_cast<uint8_t>(v));
  }
  void u64(uint64_t v) {
    u32(static_cast<uint32_t>(v >> 32));
    u32(static_cast<uint32_t>(v));
  }
  void bytes(std::span<const uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  void bytes(const ByteBuf& other) {
    buf_.insert(buf_.end(), other.buf_.begin(), other.buf_.end());
  }
  /// Append text bytes (e.g. a name field) without aliasing casts.
  void ascii(std::string_view s) {
    for (char c : s) buf_.push_back(static_cast<uint8_t>(c));
  }

  /// Overwrite a previously written 16-bit slot (back-patched length
  /// fields). Throws ParseError if the slot is out of range.
  void patch_u16(size_t offset, uint16_t v) {
    if (offset + 2 > buf_.size()) {
      throw ParseError("patch_u16: offset " + std::to_string(offset) +
                       " out of range for buffer of " +
                       std::to_string(buf_.size()));
    }
    buf_[offset] = static_cast<uint8_t>(v >> 8);
    buf_[offset + 1] = static_cast<uint8_t>(v);
  }

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& data() const { return buf_; }
  std::span<const uint8_t> span() const { return buf_; }
  std::vector<uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

// --- iostream byte bridge ----------------------------------------------
//
// std::istream/std::ostream traffic in char; wire codecs traffic in
// uint8_t. These four functions are the single audited place where the
// two meet (implemented in bytes.cpp); everything else stays cast-free.

/// Read exactly `out.size()` bytes. Returns false on EOF/short read (the
/// stream's failbit state is left to the caller).
[[nodiscard]] bool read_exact(std::istream& in, std::span<uint8_t> out);

/// Read up to `out.size()` bytes; returns the count actually read.
size_t read_upto(std::istream& in, std::span<uint8_t> out);

/// Slurp the rest of the stream into `out` (appending to its current
/// contents). When the stream is seekable the remaining size is probed
/// once up front so the buffer grows exactly once instead of
/// reallocating per chunk. Returns the number of bytes appended.
size_t read_all(std::istream& in, std::vector<uint8_t>& out);

/// Write all of `data` to the stream.
void write_bytes(std::ostream& out, std::span<const uint8_t> data);

/// View bytes as text without copying (and the reverse). The view aliases
/// the input.
std::string_view as_chars(std::span<const uint8_t> data);
std::span<const uint8_t> as_bytes(std::string_view s);

}  // namespace manrs::util
