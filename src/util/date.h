// Civil (proleptic Gregorian) date arithmetic.
//
// The measurement pipeline is organized around dated snapshots: annual
// prefix2as snapshots 2015-2022, monthly validated-ROA archives, weekly
// IHR snapshots Feb-May 2022. Date is a small value type with day-level
// resolution, total ordering, and exact day arithmetic (Howard Hinnant's
// days_from_civil algorithm).
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace manrs::util {

class Date {
 public:
  /// Default: the Unix epoch, 1970-01-01.
  constexpr Date() = default;
  constexpr Date(int year, unsigned month, unsigned day)
      : year_(year), month_(month), day_(day) {}

  int year() const { return year_; }
  unsigned month() const { return month_; }
  unsigned day() const { return day_; }

  /// True iff the date is a real calendar date (month 1-12, day valid for
  /// the month, leap years honoured).
  bool valid() const;

  /// Days since 1970-01-01 (negative before the epoch).
  int64_t to_days() const;

  /// Inverse of to_days().
  static Date from_days(int64_t days);

  /// Parse "YYYY-MM-DD" (also accepts "YYYY/MM/DD" and "YYYYMMDD").
  static std::optional<Date> parse(std::string_view s);

  /// Format as "YYYY-MM-DD".
  std::string to_string() const;

  Date add_days(int64_t n) const { return from_days(to_days() + n); }

  /// First day of the month `n` months later (n may be negative).
  Date add_months(int n) const;

  friend auto operator<=>(const Date& a, const Date& b) {
    if (auto c = a.year_ <=> b.year_; c != 0) return c;
    if (auto c = a.month_ <=> b.month_; c != 0) return c;
    return a.day_ <=> b.day_;
  }
  friend bool operator==(const Date&, const Date&) = default;

 private:
  int year_ = 1970;
  unsigned month_ = 1;
  unsigned day_ = 1;
};

/// Inclusive series of dates spaced `step_days` apart, starting at `start`
/// and not exceeding `end`. Used for weekly IHR snapshot series.
std::vector<Date> date_series(Date start, Date end, int step_days);

/// Annual series: the same month/day for each year in [first_year,
/// last_year]. Used for yearly prefix2as snapshots.
std::vector<Date> annual_series(int first_year, int last_year, unsigned month,
                                unsigned day);

}  // namespace manrs::util
