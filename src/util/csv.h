// Minimal, dependency-free CSV/TSV reader and writer.
//
// Handles RFC 4180 quoting (embedded delimiters, quotes, and newlines in
// quoted fields). The MANRS pipeline reads RIPE-style validated-ROA CSV
// exports and CAIDA pipe-separated datasets through this layer so that
// every dataset passes through the same tested code path.
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace manrs::util {

/// One parsed record (row) of fields.
using CsvRow = std::vector<std::string>;

/// Streaming CSV reader.
///
/// Usage:
///   CsvReader reader(stream, ',');
///   while (auto row = reader.next()) { ... }
class CsvReader {
 public:
  /// `delim` is the field separator; `comment` (if non-zero) causes lines
  /// whose first non-space character equals it to be skipped.
  explicit CsvReader(std::istream& in, char delim = ',', char comment = '\0');

  /// Read the next record. Returns false at end of input. Quoted fields may
  /// span physical lines.
  bool next(CsvRow& row);

  /// Number of physical lines consumed so far (for error reporting).
  size_t line_number() const { return line_; }

 private:
  std::istream& in_;
  char delim_;
  char comment_;
  size_t line_ = 0;
};

/// Streaming CSV writer. Fields containing the delimiter, quotes, CR or LF
/// are quoted; embedded quotes are doubled.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out, char delim = ',');

  void write_row(const std::vector<std::string_view>& fields);
  void write_row(const CsvRow& fields);

 private:
  void write_field(std::string_view f);
  std::ostream& out_;
  char delim_;
};

/// Parse a full document in memory. Convenience for tests and small files.
std::vector<CsvRow> parse_csv(std::string_view text, char delim = ',',
                              char comment = '\0');

}  // namespace manrs::util
