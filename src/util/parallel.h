// Dependency-free data parallelism for the measurement pipeline.
//
// The pipeline's hot stages share one shape: const shared state, many
// independent work items, a deterministic merge. This header provides the
// one sanctioned way to fan those items out:
//
//   * ThreadPool -- a fixed-size worker pool with a FIFO task queue. The
//     destructor drains every queued task before joining, so shutdown
//     with queued work cannot deadlock or drop work.
//   * parallel_for(n, fn) -- run fn(0..n-1) across the global pool and
//     block until all items finish. The first exception thrown by any
//     item is rethrown in the caller. Iteration-to-thread assignment is
//     dynamic, so callers MUST NOT depend on execution order: collect
//     results into index-addressed slots and merge serially afterwards
//     (the determinism contract, see docs/performance.md).
//     Scheduling is chunked: the shared work counter hands out a static
//     chunk of `grain` consecutive indices per atomic op, not single
//     indices, so fine-grained items stop paying one atomic per item.
//     The grain comes from the MANRS_GRAIN environment variable
//     (unset/0/garbage -> auto = n / (threads * 8), clamped to >= 1);
//     chunking never changes which indices run, only how they batch.
//   * parallel_map<T>(n, fn) -- the index-slot pattern packaged: returns
//     {fn(0), ..., fn(n-1)} exactly as a serial loop would.
//
// Sizing: the global pool takes its width from the MANRS_THREADS
// environment variable (unset/0/garbage -> hardware_concurrency, huge
// values clamp to kMaxThreads). MANRS_THREADS=1 is an exact serial
// fallback: parallel_for degenerates to a plain loop on the calling
// thread -- no pool, no worker threads, bit-for-bit the serial program.
// Nested parallel_for calls (an item that itself fans out) also run
// serially inline, which makes nesting safe instead of a deadlock.
//
// Ownership rule (enforced by tools/lint_wire.py): no raw std::thread /
// std::jthread / std::async outside src/util/parallel.*. All concurrency
// flows through this layer so TSan coverage of tests/test_parallel.cpp
// covers the whole pipeline.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace manrs::util {

/// Upper bound on pool width; MANRS_THREADS beyond this clamps down.
inline constexpr size_t kMaxThreads = 256;

/// Resolve a MANRS_THREADS-style string against a hardware thread count.
/// nullptr / empty / non-numeric / 0 fall back to `hardware` (itself
/// clamped to at least 1); anything above kMaxThreads clamps to it.
/// Exposed for tests; callers use default_thread_count().
size_t parse_thread_count(const char* value, size_t hardware);

/// Pool width implied by the environment: parse_thread_count applied to
/// getenv("MANRS_THREADS") and std::thread::hardware_concurrency().
size_t default_thread_count();

/// Resolve a MANRS_GRAIN-style string. nullptr / empty / non-numeric / 0
/// mean "auto" and return 0; explicit values pass through. Exposed for
/// tests; callers use grain_size().
size_t parse_grain(const char* value);

/// Automatic chunk size for n items on `threads` threads:
/// n / (threads * 8) clamped to >= 1 -- about eight chunks per thread,
/// enough slack for dynamic load balancing without per-item atomics.
size_t auto_grain(size_t n, size_t threads);

/// Fixed-width worker pool. Tasks run in FIFO order across workers; the
/// destructor drains the queue (every submitted task runs) and joins.
class ThreadPool {
 public:
  explicit ThreadPool(size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Fire-and-forget task. Tasks must not throw (there is no caller to
  /// receive the exception; parallel_for wraps its items instead). The
  /// destructor guarantees every submitted task has run before joining.
  void submit(std::function<void()> task);

  /// Run fn(i) for every i in [0, n) and block until all complete. The
  /// calling thread participates in the work, so progress never depends
  /// on pool capacity. If one or more items throw, the first exception
  /// (in completion order) is rethrown here after all workers stop
  /// picking up new items. `grain` is the chunk size the shared counter
  /// hands out per atomic op; 0 = auto_grain(n, size() + 1), values
  /// above n clamp to n. Chunking affects batching only, never which
  /// indices run.
  void parallel_for(size_t n, const std::function<void(size_t)>& fn,
                    size_t grain = 0);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Width of the process-global pool (initialising it from the
/// environment on first use).
size_t thread_count();

/// Reconfigure the process-global pool. 0 = re-read the environment on
/// next use. Not safe concurrently with in-flight parallel_for calls;
/// intended for tests and bench drivers, which are serial at top level.
void set_thread_count(size_t n);

/// Chunk size used by the global parallel_for (initialised from
/// MANRS_GRAIN on first use). 0 = auto per call.
size_t grain_size();

/// Reconfigure the global grain. 0 = re-read the environment on next
/// use (mirroring set_thread_count). Same concurrency caveat.
void set_grain(size_t n);

/// parallel_for over the process-global pool (serial inline when the
/// configured width is 1, n < 2, or the caller is itself a pool worker).
void parallel_for(size_t n, const std::function<void(size_t)>& fn);

/// Index-slot map: out[i] = fn(i), computed in parallel, returned in
/// index order. T must be default-constructible and movable.
template <typename T, typename Fn>
std::vector<T> parallel_map(size_t n, Fn&& fn) {
  std::vector<T> out(n);
  parallel_for(n, [&](size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace manrs::util
