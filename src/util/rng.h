// Deterministic random number generation for the synthetic-Internet
// generator and property tests.
//
// All randomness in the reproduction flows through Rng so that every
// experiment is exactly reproducible from a seed. The engine is
// xoshiro256**, seeded via splitmix64 (the construction recommended by the
// xoshiro authors).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

namespace manrs::util {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(uint64_t seed) {
    // splitmix64 expansion of the seed into the four state words.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Derive an independent stream (for per-module generators that must not
  /// perturb each other when one consumes more draws).
  Rng fork(uint64_t stream) {
    return Rng(next() ^ (stream * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL));
  }

  uint64_t next() {
    auto rotl = [](uint64_t v, int k) { return (v << k) | (v >> (64 - k)); };
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0. Uses Lemire's unbiased method.
  uint64_t uniform(uint64_t n) {
    __uint128_t m = static_cast<__uint128_t>(next()) * n;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < n) {
      uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next()) * n;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t uniform_int(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
  }

  bool bernoulli(double p) { return uniform01() < p; }

  /// Discrete Pareto-like draw used to produce heavy-tailed counts
  /// (prefixes per AS, customers per AS). Returns a value >= minimum.
  uint64_t pareto_int(uint64_t minimum, double alpha, uint64_t cap) {
    double u = uniform01();
    if (u <= 0.0) u = 1e-12;
    double v = static_cast<double>(minimum) / std::pow(u, 1.0 / alpha);
    if (v > static_cast<double>(cap)) v = static_cast<double>(cap);
    return static_cast<uint64_t>(v);
  }

  /// Standard normal via Box-Muller (one value per call; simple and
  /// deterministic).
  double normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = uniform01();
    double u2 = uniform01();
    if (u1 <= 0.0) u1 = 1e-12;
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * 3.14159265358979323846 * u2);
    return mean + stddev * z;
  }

  /// Pick a uniformly random element index weighted by `weights`
  /// (weights need not be normalized; all must be >= 0, sum > 0).
  size_t weighted_index(std::span<const double> weights) {
    double total = 0;
    for (double w : weights) total += w;
    double r = uniform01() * total;
    double acc = 0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (r < acc) return i;
    }
    return weights.size() - 1;
  }

  template <typename T>
  const T& choice(const std::vector<T>& items) {
    return items[uniform(items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = uniform(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Sample `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> sample_indices(size_t n, size_t k) {
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = i;
    for (size_t i = 0; i < k && i + 1 < n; ++i) {
      size_t j = i + uniform(n - i);
      std::swap(idx[i], idx[j]);
    }
    idx.resize(std::min(k, n));
    return idx;
  }

 private:
  uint64_t state_[4] = {};
};

}  // namespace manrs::util
