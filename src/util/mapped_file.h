// Read-only memory-mapped file with a plain-read fallback.
//
// The streaming MRT ingest references dump bytes in place instead of
// copying them through an istream: MappedFile maps the file read-only
// (mmap on POSIX hosts) and hands out std::span<const uint8_t> views of
// the mapping. When mmap is unavailable -- non-regular files, pipes,
// exotic filesystems, non-POSIX builds -- open() falls back to reading
// the whole file into an owned buffer, so callers see one contract
// either way: open() -> bytes() -> close().
//
// Lifetime rules (enforced by the mapped-span typestate protocol in
// tools/analyze/protocols.txt):
//   * every span obtained from bytes() aliases the mapping and dies
//     with it: no span may be read after close() (or after the
//     MappedFile is destroyed), and no accessor may be called on a
//     closed mapping;
//   * decode lambdas fanning out over the mapping must capture the
//     MappedFile (or its span) by reference, never copy the bytes --
//     the type is move-only precisely so a by-value capture of the
//     owner cannot compile.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace manrs::util {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile() { close(); }

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;

  /// Map `path` read-only. Returns false (and stays closed) when the
  /// file cannot be opened or stat'd; falls back to slurping the bytes
  /// into an owned buffer when mmap itself is unavailable or fails.
  /// Reopening an open MappedFile closes the previous mapping first.
  [[nodiscard]] bool open(const std::string& path);

  /// Release the mapping (or the fallback buffer). Safe to call twice;
  /// every span previously returned by bytes() is invalid afterwards.
  void close();

  bool is_open() const { return open_; }

  /// True when the bytes come from an actual mmap (false: fallback
  /// buffer, or not open). Diagnostics only -- the byte contract is
  /// identical either way.
  bool is_mapped() const { return map_base_ != nullptr; }

  /// The whole file. The span aliases the mapping: it is valid until
  /// close() / destruction and must not escape that lifetime.
  std::span<const uint8_t> bytes() const { return {data_, size_}; }

  size_t size() const { return size_; }

 private:
  bool open_ = false;
  const uint8_t* data_ = nullptr;  // view: mapping or fallback buffer
  size_t size_ = 0;
  void* map_base_ = nullptr;  // non-null iff mmap'd (munmap target)
  size_t map_len_ = 0;
  std::vector<uint8_t> fallback_;  // owns bytes when not mmap'd
};

}  // namespace manrs::util
