// Deterministic, implementation-independent hashing (FNV-1a).
//
// std::hash is stdlib-specific: the same key hashes differently across
// libstdc++ / libc++ / MSVC, and even across versions of one library.
// That is fine for in-memory containers, but any hash that is *folded
// into output bytes* -- variant bucketing, sharding keys, sampling
// decisions -- would make those bytes depend on the toolchain and break
// the "output depends only on the seed" contract (docs/performance.md).
//
// This header is the one sanctioned source of output-facing hashes:
// plain FNV-1a over explicitly chosen wire bytes, identical everywhere.
// tools/lint_wire.py (std-hash rule) bans `std::hash<` in src/ outside
// this header and the allowlisted container-hasher specializations.
#pragma once

#include <cstdint>

namespace manrs::util {

inline constexpr uint64_t kFnv1aOffset = 14695981039346656037ull;
inline constexpr uint64_t kFnv1aPrime = 1099511628211ull;

/// Fold one byte into an FNV-1a state.
constexpr uint64_t fnv1a_byte(uint64_t h, uint8_t b) {
  return (h ^ b) * kFnv1aPrime;
}

/// Fold a 64-bit value big-endian (most significant byte first), so the
/// result matches hashing the value's wire representation.
constexpr uint64_t fnv1a_u64(uint64_t h, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    h = fnv1a_byte(h, static_cast<uint8_t>(v >> shift));
  }
  return h;
}

/// FNV-1a over a byte range.
constexpr uint64_t fnv1a_bytes(uint64_t h, const uint8_t* data, size_t len) {
  for (size_t i = 0; i < len; ++i) h = fnv1a_byte(h, data[i]);
  return h;
}

}  // namespace manrs::util
