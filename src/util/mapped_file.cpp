#include "util/mapped_file.h"

#include <cstdio>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define MANRS_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace manrs::util {

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    close();
    open_ = std::exchange(other.open_, false);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    map_base_ = std::exchange(other.map_base_, nullptr);
    map_len_ = std::exchange(other.map_len_, 0);
    fallback_ = std::move(other.fallback_);
    other.fallback_.clear();
  }
  return *this;
}

namespace {

/// Plain-stdio slurp for the no-mmap path. Returns false on any I/O
/// error; `out` is sized from a seek so the read never reallocates.
bool read_whole_file(const std::string& path, std::vector<uint8_t>& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  bool ok = std::fseek(f, 0, SEEK_END) == 0;
  long end = ok ? std::ftell(f) : -1;
  ok = ok && end >= 0 && std::fseek(f, 0, SEEK_SET) == 0;
  if (ok) {
    out.resize(static_cast<size_t>(end));
    size_t got = out.empty() ? 0 : std::fread(out.data(), 1, out.size(), f);
    ok = got == out.size();
  }
  std::fclose(f);
  if (!ok) out.clear();
  return ok;
}

}  // namespace

bool MappedFile::open(const std::string& path) {
  close();
#if MANRS_HAVE_MMAP
  int fd = ::open(path.c_str(), O_RDONLY);  // POSIX open, not a parse path
  if (fd >= 0) {
    struct stat st{};
    bool is_regular = fstat(fd, &st) == 0 && S_ISREG(st.st_mode);
    if (is_regular) {
      size_t len = static_cast<size_t>(st.st_size);
      if (len == 0) {
        // mmap(0) is EINVAL; an empty regular file is an empty span.
        ::close(fd);
        open_ = true;
        return true;
      }
      void* base = mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (base != MAP_FAILED) {
        map_base_ = base;
        map_len_ = len;
        data_ = static_cast<const uint8_t*>(base);
        size_ = len;
        open_ = true;
        return true;
      }
    } else {
      ::close(fd);
    }
    // Non-regular file or mmap failure: fall through to the read path.
  }
#endif
  if (!read_whole_file(path, fallback_)) return false;
  data_ = fallback_.data();
  size_ = fallback_.size();
  open_ = true;
  return true;
}

void MappedFile::close() {
#if MANRS_HAVE_MMAP
  if (map_base_ != nullptr) munmap(map_base_, map_len_);
#endif
  map_base_ = nullptr;
  map_len_ = 0;
  fallback_.clear();
  fallback_.shrink_to_fit();
  data_ = nullptr;
  size_ = 0;
  open_ = false;
}

}  // namespace manrs::util
