#include "util/date.h"

#include <array>
#include <cstdio>

#include "util/strings.h"

namespace manrs::util {

namespace {
constexpr bool is_leap(int y) {
  return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

constexpr unsigned days_in_month(int y, unsigned m) {
  constexpr std::array<unsigned, 12> kDays{31, 28, 31, 30, 31, 30,
                                           31, 31, 30, 31, 30, 31};
  if (m == 2 && is_leap(y)) return 29;
  return kDays[m - 1];
}
}  // namespace

bool Date::valid() const {
  if (month_ < 1 || month_ > 12) return false;
  if (day_ < 1 || day_ > days_in_month(year_, month_)) return false;
  return true;
}

int64_t Date::to_days() const {
  // Howard Hinnant's days_from_civil.
  int y = year_;
  unsigned m = month_;
  unsigned d = day_;
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3u : 9u)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<int64_t>(era) * 146097 +
         static_cast<int64_t>(doe) - 719468;
}

Date Date::from_days(int64_t z) {
  // Howard Hinnant's civil_from_days.
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int y = static_cast<int>(yoe) + static_cast<int>(era) * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3u : -9u);
  return Date(y + (m <= 2), m, d);
}

std::optional<Date> Date::parse(std::string_view s) {
  s = trim(s);
  std::vector<std::string_view> parts;
  if (s.find('-') != std::string_view::npos) {
    parts = split(s, '-');
  } else if (s.find('/') != std::string_view::npos) {
    parts = split(s, '/');
  } else if (s.size() == 8) {
    parts = {s.substr(0, 4), s.substr(4, 2), s.substr(6, 2)};
  } else {
    return std::nullopt;
  }
  if (parts.size() != 3) return std::nullopt;
  auto y = parse_int<int>(parts[0]);
  auto m = parse_uint<unsigned>(parts[1]);
  auto d = parse_uint<unsigned>(parts[2]);
  if (!y || !m || !d) return std::nullopt;
  Date date(*y, *m, *d);
  if (!date.valid()) return std::nullopt;
  return date;
}

std::string Date::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u", year_, month_, day_);
  return buf;
}

Date Date::add_months(int n) const {
  int total = year_ * 12 + static_cast<int>(month_) - 1 + n;
  int y = total / 12;
  int m = total % 12;
  if (m < 0) {
    m += 12;
    y -= 1;
  }
  return Date(y, static_cast<unsigned>(m + 1), 1);
}

std::vector<Date> date_series(Date start, Date end, int step_days) {
  std::vector<Date> out;
  if (step_days <= 0) return out;
  for (int64_t d = start.to_days(); d <= end.to_days(); d += step_days) {
    out.push_back(Date::from_days(d));
  }
  return out;
}

std::vector<Date> annual_series(int first_year, int last_year, unsigned month,
                                unsigned day) {
  std::vector<Date> out;
  for (int y = first_year; y <= last_year; ++y) {
    out.emplace_back(y, month, day);
  }
  return out;
}

}  // namespace manrs::util
