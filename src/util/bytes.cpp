#include "util/bytes.h"

#include <array>
#include <istream>
#include <ostream>

namespace manrs::util {

std::string_view ByteCursor::ascii(size_t n) {
  return as_chars(bytes(n));
}

// The casts below are the codebase's one sanctioned byte<->char aliasing
// site: uint8_t and char have the same size and alignment, and aliasing
// through [unsigned] char is explicitly defined behaviour. Everything
// above the stream boundary works in uint8_t spans only. (This file is
// on the reinterpret-cast allowlist, so no waiver is needed here.)

bool read_exact(std::istream& in, std::span<uint8_t> out) {
  if (out.empty()) return true;
  in.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(out.size()));
  return static_cast<size_t>(in.gcount()) == out.size();
}

size_t read_upto(std::istream& in, std::span<uint8_t> out) {
  if (out.empty()) return 0;
  in.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(out.size()));
  return static_cast<size_t>(in.gcount());
}

size_t read_all(std::istream& in, std::vector<uint8_t>& out) {
  const size_t start = out.size();
  // Probe the remaining length when the stream is seekable so the slurp
  // reserves once; non-seekable streams (pipes) fall back to doubling.
  const std::istream::pos_type here = in.tellg();
  if (here != std::istream::pos_type(-1)) {
    in.seekg(0, std::ios::end);
    const std::istream::pos_type end = in.tellg();
    in.seekg(here);
    if (end != std::istream::pos_type(-1) && end > here) {
      out.reserve(start + static_cast<size_t>(end - here));
    }
  }
  std::array<uint8_t, 65536> chunk{};
  size_t got = 0;
  while ((got = read_upto(in, chunk)) > 0) {
    out.insert(out.end(), chunk.data(), chunk.data() + got);
  }
  return out.size() - start;
}

void write_bytes(std::ostream& out, std::span<const uint8_t> data) {
  if (data.empty()) return;
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

std::string_view as_chars(std::span<const uint8_t> data) {
  return std::string_view(reinterpret_cast<const char*>(data.data()),
                          data.size());
}

std::span<const uint8_t> as_bytes(std::string_view s) {
  return std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

}  // namespace manrs::util
