#include "util/bytes.h"

#include <istream>
#include <ostream>

namespace manrs::util {

std::string_view ByteCursor::ascii(size_t n) {
  return as_chars(bytes(n));
}

// The casts below are the codebase's one sanctioned byte<->char aliasing
// site: uint8_t and char have the same size and alignment, and aliasing
// through [unsigned] char is explicitly defined behaviour. Everything
// above the stream boundary works in uint8_t spans only.
// lint-ok: audited aliasing bridge

bool read_exact(std::istream& in, std::span<uint8_t> out) {
  if (out.empty()) return true;
  in.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(out.size()));
  return static_cast<size_t>(in.gcount()) == out.size();
}

size_t read_upto(std::istream& in, std::span<uint8_t> out) {
  if (out.empty()) return 0;
  in.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(out.size()));
  return static_cast<size_t>(in.gcount());
}

void write_bytes(std::ostream& out, std::span<const uint8_t> data) {
  if (data.empty()) return;
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

std::string_view as_chars(std::span<const uint8_t> data) {
  return std::string_view(reinterpret_cast<const char*>(data.data()),
                          data.size());
}

std::span<const uint8_t> as_bytes(std::string_view s) {
  return std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

}  // namespace manrs::util
