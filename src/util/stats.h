// Summary statistics used throughout the evaluation harness.
//
// The paper reports CDFs (Figs 5, 7, 8, 9), medians, percentiles, and
// variances (§9.2). EmpiricalDistribution is the single implementation all
// benches use so the printed series are consistent.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace manrs::util {

/// An empirical distribution over double samples.
class EmpiricalDistribution {
 public:
  EmpiricalDistribution() = default;
  explicit EmpiricalDistribution(std::vector<double> samples);

  void add(double x);

  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double min() const;
  double max() const;
  double mean() const;
  /// Population variance (the paper's §9.2 comparison of variances).
  double variance() const;
  double stddev() const;

  /// Quantile in [0,1] using linear interpolation between order statistics.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  /// Empirical CDF value: P(X <= x).
  double cdf(double x) const;

  /// Fraction of samples exactly equal to `x` (used for statements like
  /// "60.1% originated only RPKI Valid prefixes", i.e. mass at 100).
  double mass_at(double x, double eps = 1e-9) const;

  /// Evaluate the CDF on a fixed grid of `points` values spanning
  /// [lo, hi]; returns (x, F(x)) pairs. This is what the fig benches print.
  std::vector<std::pair<double, double>> cdf_series(double lo, double hi,
                                                    size_t points) const;

  const std::vector<double>& sorted_samples() const;

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Render a fixed-width ASCII table row; benches use this for the printed
/// reproduction of the paper's tables.
std::string format_row(const std::vector<std::string>& cells,
                       const std::vector<int>& widths);

/// Percent with one decimal, e.g. 83.4 -> "83.4%".
std::string percent(double value);

}  // namespace manrs::util
