// String helpers shared across the MANRS reproduction pipeline.
//
// All functions operate on std::string_view where possible and never
// allocate unless a new string is genuinely required.
#pragma once

#include <charconv>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace manrs::util {

/// Split `s` on every occurrence of `delim`. Empty fields are preserved
/// ("a,,b" -> {"a","","b"}). An empty input yields a single empty field,
/// matching the behaviour of line-oriented record formats (CSV, CAIDA
/// as-rel) where a blank line is one empty column.
std::vector<std::string_view> split(std::string_view s, char delim);

/// Split on runs of ASCII whitespace; empty fields are never produced.
std::vector<std::string_view> split_ws(std::string_view s);

/// Strip leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// ASCII-only lowercase copy.
std::string to_lower(std::string_view s);

/// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Join `parts` with `sep` between elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string join(const std::vector<std::string_view>& parts,
                 std::string_view sep);

/// Parse a decimal unsigned integer strictly: the whole view must be
/// consumed and the value must fit. Returns nullopt otherwise.
template <typename T>
std::optional<T> parse_uint(std::string_view s) {
  static_assert(std::is_unsigned_v<T>);
  if (s.empty()) return std::nullopt;
  T value{};
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

/// Parse a decimal signed integer strictly.
template <typename T>
std::optional<T> parse_int(std::string_view s) {
  static_assert(std::is_signed_v<T>);
  if (s.empty()) return std::nullopt;
  T value{};
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

/// Strict double parse (whole view consumed).
std::optional<double> parse_double(std::string_view s);

}  // namespace manrs::util
