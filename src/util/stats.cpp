#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace manrs::util {

EmpiricalDistribution::EmpiricalDistribution(std::vector<double> samples)
    : samples_(std::move(samples)), sorted_(false) {}

void EmpiricalDistribution::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void EmpiricalDistribution::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalDistribution::min() const {
  if (samples_.empty()) throw std::logic_error("min() of empty distribution");
  ensure_sorted();
  return samples_.front();
}

double EmpiricalDistribution::max() const {
  if (samples_.empty()) throw std::logic_error("max() of empty distribution");
  ensure_sorted();
  return samples_.back();
}

double EmpiricalDistribution::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0;
  for (double x : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

double EmpiricalDistribution::variance() const {
  if (samples_.empty()) return 0.0;
  double m = mean();
  double acc = 0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return acc / static_cast<double>(samples_.size());
}

double EmpiricalDistribution::stddev() const { return std::sqrt(variance()); }

double EmpiricalDistribution::quantile(double q) const {
  if (samples_.empty()) {
    throw std::logic_error("quantile() of empty distribution");
  }
  ensure_sorted();
  if (q <= 0) return samples_.front();
  if (q >= 1) return samples_.back();
  double pos = q * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double EmpiricalDistribution::cdf(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double EmpiricalDistribution::mass_at(double x, double eps) const {
  if (samples_.empty()) return 0.0;
  size_t count = 0;
  for (double s : samples_) {
    if (std::fabs(s - x) <= eps) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> EmpiricalDistribution::cdf_series(
    double lo, double hi, size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (points < 2 || hi <= lo) return out;
  out.reserve(points);
  for (size_t i = 0; i < points; ++i) {
    double x = lo + (hi - lo) * static_cast<double>(i) /
                        static_cast<double>(points - 1);
    out.emplace_back(x, cdf(x));
  }
  return out;
}

const std::vector<double>& EmpiricalDistribution::sorted_samples() const {
  ensure_sorted();
  return samples_;
}

std::string format_row(const std::vector<std::string>& cells,
                       const std::vector<int>& widths) {
  std::string out;
  for (size_t i = 0; i < cells.size(); ++i) {
    int w = i < widths.size() ? widths[i] : 12;
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%-*s", w, cells[i].c_str());
    out += buf;
    if (i + 1 < cells.size()) out += " ";
  }
  return out;
}

std::string percent(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", value);
  return buf;
}

}  // namespace manrs::util
