#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace manrs::util {

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

namespace {
template <typename Range>
std::string join_impl(const Range& parts, std::string_view sep) {
  std::string out;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) out.append(sep);
    out.append(p);
    first = false;
  }
  return out;
}
}  // namespace

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  return join_impl(parts, sep);
}

std::string join(const std::vector<std::string_view>& parts,
                 std::string_view sep) {
  return join_impl(parts, sep);
}

std::optional<double> parse_double(std::string_view s) {
  if (s.empty()) return std::nullopt;
  // std::from_chars for double is not universally available; strtod on a
  // NUL-terminated copy is portable and strict enough with an end check.
  std::string buf(s);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

}  // namespace manrs::util
