#include "util/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <limits>
#include <memory>

#include "util/strings.h"

namespace manrs::util {

namespace {

/// Set while the current thread is executing parallel_for items (either
/// as a pool worker or as the participating caller). A nested
/// parallel_for on such a thread runs serially inline: with one shared
/// pool, waiting on the pool from inside the pool can starve itself.
thread_local bool tl_in_parallel_region = false;

class RegionGuard {
 public:
  RegionGuard() : prev_(tl_in_parallel_region) {
    tl_in_parallel_region = true;
  }
  ~RegionGuard() { tl_in_parallel_region = prev_; }
  RegionGuard(const RegionGuard&) = delete;
  RegionGuard& operator=(const RegionGuard&) = delete;

 private:
  bool prev_;
};

void serial_for(size_t n, const std::function<void(size_t)>& fn) {
  for (size_t i = 0; i < n; ++i) fn(i);
}

}  // namespace

size_t parse_thread_count(const char* value, size_t hardware) {
  if (hardware == 0) hardware = 1;
  if (hardware > kMaxThreads) hardware = kMaxThreads;
  if (value == nullptr) return hardware;
  auto parsed = parse_uint<uint64_t>(value);
  if (!parsed || *parsed == 0) return hardware;  // garbage or 0: default
  if (*parsed > kMaxThreads) return kMaxThreads;
  return static_cast<size_t>(*parsed);
}

size_t default_thread_count() {
  return parse_thread_count(std::getenv("MANRS_THREADS"),
                            std::thread::hardware_concurrency());
}

size_t parse_grain(const char* value) {
  if (value == nullptr) return 0;
  auto parsed = parse_uint<uint64_t>(value);
  if (!parsed) return 0;  // garbage: auto
  if (*parsed > static_cast<uint64_t>(std::numeric_limits<size_t>::max())) {
    return std::numeric_limits<size_t>::max();
  }
  return static_cast<size_t>(*parsed);
}

size_t auto_grain(size_t n, size_t threads) {
  if (threads == 0) threads = 1;
  size_t g = n / (threads * 8);
  return g == 0 ? 1 : g;
}

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) threads = 1;
  if (threads > kMaxThreads) threads = kMaxThreads;
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(size_t n, const std::function<void(size_t)>& fn,
                              size_t grain) {
  if (n == 0) return;
  if (n == 1 || tl_in_parallel_region) {
    RegionGuard guard;
    serial_for(n, fn);
    return;
  }
  if (grain == 0) grain = auto_grain(n, workers_.size() + 1);
  if (grain > n) grain = n;

  // Per-call state shared with the queued worker tasks. shared_ptr so a
  // task that outlives this call (it cannot, since we block, but the
  // destructor drain path keeps it alive regardless) stays valid.
  struct ForState {
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex mutex;
    std::condition_variable done_cv;
    size_t pending = 0;  // queued helper tasks not yet finished
    std::exception_ptr error;
    size_t n = 0;
    size_t grain = 1;
    const std::function<void(size_t)>* fn = nullptr;
  };
  auto state = std::make_shared<ForState>();
  state->n = n;
  state->grain = grain;
  state->fn = &fn;

  auto run_items = [](const std::shared_ptr<ForState>& s) {
    RegionGuard guard;
    for (;;) {
      size_t start = s->next.fetch_add(s->grain, std::memory_order_relaxed);
      if (start >= s->n || s->failed.load(std::memory_order_relaxed)) break;
      // grain <= n, so start + grain cannot wrap before this clamp.
      size_t end = s->grain > s->n - start ? s->n : start + s->grain;
      for (size_t i = start; i < end; ++i) {
        if (s->failed.load(std::memory_order_relaxed)) return;
        try {
          (*s->fn)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(s->mutex);
          if (!s->error) s->error = std::current_exception();
          s->failed.store(true, std::memory_order_relaxed);
        }
      }
    }
  };

  // One helper task per worker, capped by the number of chunks beyond
  // the caller's first; the caller participates too, so completion never
  // depends on pool availability.
  size_t chunks = (n + grain - 1) / grain;
  size_t helpers = workers_.size() < chunks - 1 ? workers_.size() : chunks - 1;
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    state->pending = helpers;
  }
  for (size_t t = 0; t < helpers; ++t) {
    submit([state, run_items] {
      run_items(state);
      {
        std::lock_guard<std::mutex> lock(state->mutex);
        --state->pending;
      }
      state->done_cv.notify_one();
    });
  }

  run_items(state);
  std::unique_lock<std::mutex> lock(state->mutex);
  state->done_cv.wait(lock, [&] { return state->pending == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

namespace {

/// Process-global pool state. The pool is built lazily so that binaries
/// that never fan out never spawn threads, and so set_thread_count can
/// reconfigure before first use.
struct GlobalPool {
  std::mutex mutex;
  size_t count = 0;  // 0 = not yet resolved from the environment
  bool grain_resolved = false;
  size_t grain = 0;  // 0 = auto chunking per call
  std::unique_ptr<ThreadPool> pool;
};

GlobalPool& global_pool() {
  static GlobalPool g;
  return g;
}

/// Resolve the configured width and (when > 1) the pool to run on.
ThreadPool* acquire_pool() {
  GlobalPool& g = global_pool();
  std::lock_guard<std::mutex> lock(g.mutex);
  if (g.count == 0) g.count = default_thread_count();
  if (g.count > 1 && !g.pool) {
    g.pool = std::make_unique<ThreadPool>(g.count);
  }
  return g.pool.get();
}

}  // namespace

size_t thread_count() {
  GlobalPool& g = global_pool();
  std::lock_guard<std::mutex> lock(g.mutex);
  if (g.count == 0) g.count = default_thread_count();
  return g.count;
}

void set_thread_count(size_t n) {
  if (n > kMaxThreads) n = kMaxThreads;
  GlobalPool& g = global_pool();
  std::unique_ptr<ThreadPool> old;
  {
    std::lock_guard<std::mutex> lock(g.mutex);
    old = std::move(g.pool);  // joined outside the lock
    g.count = n;
  }
}

size_t grain_size() {
  GlobalPool& g = global_pool();
  std::lock_guard<std::mutex> lock(g.mutex);
  if (!g.grain_resolved) {
    g.grain = parse_grain(std::getenv("MANRS_GRAIN"));
    g.grain_resolved = true;
  }
  return g.grain;
}

void set_grain(size_t n) {
  GlobalPool& g = global_pool();
  std::lock_guard<std::mutex> lock(g.mutex);
  if (n == 0) {
    g.grain_resolved = false;  // re-read MANRS_GRAIN on next use
    g.grain = 0;
  } else {
    g.grain_resolved = true;
    g.grain = n;
  }
}

void parallel_for(size_t n, const std::function<void(size_t)>& fn) {
  if (n < 2 || tl_in_parallel_region) {
    RegionGuard guard;
    serial_for(n, fn);
    return;
  }
  ThreadPool* pool = acquire_pool();
  if (pool == nullptr) {  // configured width 1: exact serial fallback
    RegionGuard guard;
    serial_for(n, fn);
    return;
  }
  pool->parallel_for(n, fn, grain_size());
}

}  // namespace manrs::util
