#include "irr/objects.h"

#include <algorithm>
#include <cctype>

#include "util/strings.h"

namespace manrs::irr {

namespace {
std::string upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}
}  // namespace

std::string canonical_set_name(std::string_view name) {
  return upper(manrs::util::trim(name));
}

std::optional<RouteObject> RouteObject::from_rpsl(const RpslObject& obj) {
  auto cls = obj.object_class();
  if (cls != "route" && cls != "route6") return std::nullopt;
  auto prefix = net::Prefix::parse(obj.key());
  if (!prefix) return std::nullopt;
  if (cls == "route" && !prefix->is_v4()) return std::nullopt;
  if (cls == "route6" && prefix->is_v4()) return std::nullopt;
  auto origin_attr = obj.first("origin");
  if (!origin_attr) return std::nullopt;
  auto origin = net::Asn::parse(manrs::util::trim(*origin_attr));
  if (!origin) return std::nullopt;

  RouteObject route;
  route.prefix = *prefix;
  route.origin = *origin;
  if (auto src = obj.first("source")) route.source = upper(*src);
  for (auto m : obj.all("mnt-by")) {
    route.maintainers.emplace_back(upper(m));
  }
  return route;
}

RpslObject RouteObject::to_rpsl() const {
  RpslObject obj;
  obj.attributes.push_back(
      {prefix.is_v4() ? "route" : "route6", prefix.to_string()});
  obj.attributes.push_back({"origin", origin.to_string()});
  for (const auto& m : maintainers) obj.attributes.push_back({"mnt-by", m});
  if (!source.empty()) obj.attributes.push_back({"source", source});
  return obj;
}

std::optional<AsSetObject> AsSetObject::from_rpsl(const RpslObject& obj) {
  if (obj.object_class() != "as-set") return std::nullopt;
  AsSetObject set;
  set.name = canonical_set_name(obj.key());
  if (set.name.empty()) return std::nullopt;
  for (auto members_attr : obj.all("members")) {
    for (auto member : manrs::util::split(members_attr, ',')) {
      auto token = manrs::util::trim(member);
      if (token.empty()) continue;
      AsSetMember m;
      if (auto asn = net::Asn::parse(token);
          asn && token.find('-') == std::string_view::npos) {
        m.asn = *asn;
      } else {
        m.set_name = canonical_set_name(token);
      }
      set.members.push_back(std::move(m));
    }
  }
  if (auto src = obj.first("source")) set.source = upper(*src);
  return set;
}

RpslObject AsSetObject::to_rpsl() const {
  RpslObject obj;
  obj.attributes.push_back({"as-set", name});
  std::vector<std::string> tokens;
  tokens.reserve(members.size());
  for (const auto& m : members) {
    tokens.push_back(m.is_asn() ? m.asn->to_string() : m.set_name);
  }
  if (!tokens.empty()) {
    obj.attributes.push_back({"members", manrs::util::join(tokens, ", ")});
  }
  if (!source.empty()) obj.attributes.push_back({"source", source});
  return obj;
}

std::optional<AutNumObject> AutNumObject::from_rpsl(const RpslObject& obj) {
  if (obj.object_class() != "aut-num") return std::nullopt;
  auto asn = net::Asn::parse(manrs::util::trim(obj.key()));
  if (!asn) return std::nullopt;
  AutNumObject aut;
  aut.asn = *asn;
  if (auto name = obj.first("as-name")) aut.as_name = std::string(*name);
  for (auto line : obj.all("import")) aut.import_lines.emplace_back(line);
  for (auto line : obj.all("export")) aut.export_lines.emplace_back(line);
  for (const char* attr : {"admin-c", "tech-c", "e-mail", "notify"}) {
    for (auto value : obj.all(attr)) {
      aut.contacts.emplace_back(value);
    }
  }
  if (auto src = obj.first("source")) aut.source = upper(*src);
  return aut;
}

RpslObject AutNumObject::to_rpsl() const {
  RpslObject obj;
  obj.attributes.push_back({"aut-num", asn.to_string()});
  if (!as_name.empty()) obj.attributes.push_back({"as-name", as_name});
  for (const auto& line : import_lines) {
    obj.attributes.push_back({"import", line});
  }
  for (const auto& line : export_lines) {
    obj.attributes.push_back({"export", line});
  }
  for (const auto& contact : contacts) {
    // Handles serialize as admin-c; addresses (containing '@') as e-mail.
    obj.attributes.push_back(
        {contact.find('@') != std::string::npos ? "e-mail" : "admin-c",
         contact});
  }
  if (!source.empty()) obj.attributes.push_back({"source", source});
  return obj;
}

}  // namespace manrs::irr
