#include "irr/validation.h"

namespace manrs::irr {

std::string_view to_string(IrrStatus s) {
  switch (s) {
    case IrrStatus::kValid:
      return "Valid";
    case IrrStatus::kInvalidAsn:
      return "Invalid";
    case IrrStatus::kInvalidLength:
      return "InvalidLength";
    case IrrStatus::kNotFound:
      return "NotFound";
  }
  return "?";
}

namespace {
template <typename Source>
IrrStatus classify(const Source& source, const net::Prefix& route,
                   net::Asn origin) {
  bool any_covering = false;
  bool asn_match = false;
  bool valid = false;
  for (const auto& obj : source.covering_routes(route)) {
    any_covering = true;
    if (obj.origin == origin) {
      asn_match = true;
      // IRR max length == registered prefix length (§6.1): only an exact
      // length match is Valid.
      if (obj.prefix.length() == route.length()) valid = true;
    }
  }
  if (!any_covering) return IrrStatus::kNotFound;
  if (valid) return IrrStatus::kValid;
  if (asn_match) return IrrStatus::kInvalidLength;
  return IrrStatus::kInvalidAsn;
}
}  // namespace

IrrStatus validate_route(const IrrRegistry& registry,
                         const net::Prefix& route, net::Asn origin) {
  return classify(registry, route, origin);
}

IrrStatus validate_route(const IrrDatabase& database,
                         const net::Prefix& route, net::Asn origin) {
  return classify(database, route, origin);
}

}  // namespace manrs::irr
