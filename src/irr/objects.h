// Typed views over RPSL objects.
//
// The analysis needs three object classes: route/route6 (the registration
// the paper validates against, §2.2), as-set (membership expansion used by
// IXPs/clouds for filter generation), and aut-num (per-AS metadata). Each
// typed struct is produced from a generic RpslObject, with strict parsing
// of the fields the pipeline depends on.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "irr/rpsl.h"
#include "netbase/asn.h"
#include "netbase/prefix.h"

namespace manrs::irr {

/// A route or route6 object: "this origin AS intends to announce this
/// prefix".
struct RouteObject {
  net::Prefix prefix;
  net::Asn origin;
  std::string source;  // the registry this object came from ("RADB", ...)
  std::vector<std::string> maintainers;  // mnt-by values

  /// Parse from an RpslObject of class route/route6. Returns nullopt when
  /// the prefix or origin is malformed.
  static std::optional<RouteObject> from_rpsl(const RpslObject& obj);

  /// Serialize to RPSL.
  RpslObject to_rpsl() const;
};

/// An as-set member: either a concrete ASN or a reference to another set.
struct AsSetMember {
  std::optional<net::Asn> asn;  // set when the member is an AS number
  std::string set_name;         // set when the member is another as-set

  bool is_asn() const { return asn.has_value(); }
};

/// An as-set object: a named, possibly nested, collection of ASNs.
struct AsSetObject {
  std::string name;  // canonical upper-case, e.g. "AS-EXAMPLE"
  std::vector<AsSetMember> members;
  std::string source;

  static std::optional<AsSetObject> from_rpsl(const RpslObject& obj);
  RpslObject to_rpsl() const;
};

/// An aut-num object (policy is carried as opaque strings, which is how
/// most tooling treats it; contact handles feed the MANRS Action 3
/// "maintain up-to-date contact information" check).
struct AutNumObject {
  net::Asn asn;
  std::string as_name;
  std::vector<std::string> import_lines;
  std::vector<std::string> export_lines;
  /// admin-c / tech-c handles and e-mail/notify addresses, in source
  /// order.
  std::vector<std::string> contacts;
  std::string source;

  /// True when at least one contact attribute is present (the Action 3
  /// observable).
  bool has_contact() const { return !contacts.empty(); }

  static std::optional<AutNumObject> from_rpsl(const RpslObject& obj);
  RpslObject to_rpsl() const;
};

/// Canonicalize an as-set name (upper-case; RPSL names are
/// case-insensitive).
std::string canonical_set_name(std::string_view name);

}  // namespace manrs::irr
