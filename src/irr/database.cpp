#include "irr/database.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "irr/rpsl.h"

namespace manrs::irr {

void IrrDatabase::add_route(RouteObject route) {
  if (route.source.empty()) route.source = name_;
  net::Prefix key = route.prefix;
  routes_.insert(key, std::move(route));
  ++route_count_;
}

void IrrDatabase::add_as_set(AsSetObject set) {
  if (set.source.empty()) set.source = name_;
  as_sets_[set.name] = std::move(set);
}

void IrrDatabase::add_aut_num(AutNumObject aut) {
  if (aut.source.empty()) aut.source = name_;
  aut_nums_[aut.asn.value()] = std::move(aut);
}

size_t IrrDatabase::remove_route(const net::Prefix& prefix, net::Asn origin) {
  size_t removed = routes_.erase_at(
      prefix, [&](const RouteObject& r) { return r.origin == origin; });
  route_count_ -= removed;
  return removed;
}

void IrrDatabase::stage_add_route(RouteObject route) {
  staged_.push_back(StagedOp{std::move(route), /*add=*/true});
}

void IrrDatabase::stage_remove_route(const net::Prefix& prefix,
                                     net::Asn origin) {
  RouteObject key;
  key.prefix = prefix;
  key.origin = origin;
  staged_.push_back(StagedOp{std::move(key), /*add=*/false});
}

size_t IrrDatabase::finalize_delta() {
  size_t applied = 0;
  for (StagedOp& op : staged_) {
    if (op.add) {
      add_route(std::move(op.route));
      ++applied;
    } else {
      applied += remove_route(op.route.prefix, op.route.origin);
    }
  }
  staged_.clear();
  return applied;
}

std::vector<RouteObject> IrrDatabase::covering_routes(
    const net::Prefix& query) const {
  return routes_.covering(query);
}

const std::vector<RouteObject>& IrrDatabase::routes_at(
    const net::Prefix& prefix) const {
  return routes_.exact(prefix);
}

const AsSetObject* IrrDatabase::find_as_set(std::string_view name) const {
  auto it = as_sets_.find(canonical_set_name(name));
  return it == as_sets_.end() ? nullptr : &it->second;
}

const AutNumObject* IrrDatabase::find_aut_num(net::Asn asn) const {
  auto it = aut_nums_.find(asn.value());
  return it == aut_nums_.end() ? nullptr : &it->second;
}

size_t IrrDatabase::load_rpsl(std::istream& in, size_t* malformed) {
  RpslParser parser(in);
  RpslObject obj;
  size_t loaded = 0;
  while (parser.next(obj)) {
    if (auto route = RouteObject::from_rpsl(obj)) {
      add_route(std::move(*route));
      ++loaded;
    } else if (auto set = AsSetObject::from_rpsl(obj)) {
      add_as_set(std::move(*set));
      ++loaded;
    } else if (auto aut = AutNumObject::from_rpsl(obj)) {
      add_aut_num(std::move(*aut));
      ++loaded;
    }
    // Other classes (mntner, person, ...) are present in real dumps but
    // not consumed by the pipeline.
  }
  if (malformed) *malformed = parser.malformed_lines();
  return loaded;
}

void IrrDatabase::write_rpsl(std::ostream& out) const {
  routes_.for_each([&](const RouteObject& r) {
    manrs::irr::write_rpsl(out, r.to_rpsl());
  });
  // Deterministic order for sets and aut-nums (unordered_map iteration
  // order is not stable across runs).
  std::vector<const AsSetObject*> sets;
  sets.reserve(as_sets_.size());
  for (const auto& [_, s] : as_sets_) sets.push_back(&s);
  std::sort(sets.begin(), sets.end(),
            [](auto* a, auto* b) { return a->name < b->name; });
  for (const auto* s : sets) manrs::irr::write_rpsl(out, s->to_rpsl());

  std::vector<const AutNumObject*> auts;
  auts.reserve(aut_nums_.size());
  for (const auto& [_, a] : aut_nums_) auts.push_back(&a);
  std::sort(auts.begin(), auts.end(), [](auto* a, auto* b) {
    return a->asn.value() < b->asn.value();
  });
  for (const auto* a : auts) manrs::irr::write_rpsl(out, a->to_rpsl());
}

IrrDatabase& IrrRegistry::add_database(std::string name, bool authoritative) {
  databases_.push_back(
      std::make_unique<IrrDatabase>(std::move(name), authoritative));
  return *databases_.back();
}

const IrrDatabase* IrrRegistry::find_database(std::string_view name) const {
  for (const auto& db : databases_) {
    if (db->name() == name) return db.get();
  }
  return nullptr;
}

IrrDatabase* IrrRegistry::find_database_mut(std::string_view name) {
  for (const auto& db : databases_) {
    if (db->name() == name) return db.get();
  }
  return nullptr;
}

std::vector<const IrrDatabase*> IrrRegistry::databases() const {
  std::vector<const IrrDatabase*> out;
  out.reserve(databases_.size());
  // Authoritative first: this is the precedence order queries use.
  for (const auto& db : databases_) {
    if (db->authoritative()) out.push_back(db.get());
  }
  for (const auto& db : databases_) {
    if (!db->authoritative()) out.push_back(db.get());
  }
  return out;
}

size_t IrrRegistry::total_routes() const {
  size_t n = 0;
  for (const auto& db : databases_) n += db->route_count();
  return n;
}

size_t IrrRegistry::mirror(const IrrDatabase& source,
                           const std::string& target) {
  IrrDatabase* dst = nullptr;
  for (auto& db : databases_) {
    if (db->name() == target) {
      dst = db.get();
      break;
    }
  }
  if (!dst) dst = &add_database(target, /*authoritative=*/false);

  size_t copied = 0;
  source.for_each_route([&](const RouteObject& r) {
    for (const auto& existing : dst->routes_at(r.prefix)) {
      if (existing.origin == r.origin) return;  // already mirrored
    }
    RouteObject copy = r;  // keep the original `source` tag, as RADb does
    dst->add_route(std::move(copy));
    ++copied;
  });
  return copied;
}

std::vector<RouteObject> IrrRegistry::covering_routes(
    const net::Prefix& query) const {
  std::vector<RouteObject> out;
  std::unordered_set<std::string> seen;  // "prefix origin" de-dup keys
  for (const IrrDatabase* db : databases()) {
    for (auto& route : db->covering_routes(query)) {
      std::string key =
          route.prefix.to_string() + " " + route.origin.to_string();
      if (seen.insert(std::move(key)).second) {
        out.push_back(std::move(route));
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const RouteObject& a, const RouteObject& b) {
                     return a.prefix.length() < b.prefix.length();
                   });
  return out;
}

bool IrrRegistry::covered(const net::Prefix& query) const {
  for (const auto& db : databases_) {
    if (db->covered(query)) return true;
  }
  return false;
}

const AsSetObject* IrrRegistry::find_as_set(std::string_view name) const {
  for (const IrrDatabase* db : databases()) {
    if (const AsSetObject* set = db->find_as_set(name)) return set;
  }
  return nullptr;
}

std::vector<net::Asn> IrrRegistry::expand_as_set(std::string_view name,
                                                 size_t max_depth,
                                                 size_t* missing_sets) const {
  std::vector<net::Asn> out;
  std::unordered_set<std::string> visited;
  size_t missing = 0;

  // Explicit work stack of (set name, depth) so arbitrarily deep nesting
  // cannot overflow the call stack.
  std::vector<std::pair<std::string, size_t>> stack;
  stack.emplace_back(canonical_set_name(name), 0);
  while (!stack.empty()) {
    auto [set_name, depth] = std::move(stack.back());
    stack.pop_back();
    if (!visited.insert(set_name).second) continue;  // cycle / repeat
    if (depth > max_depth) continue;
    const AsSetObject* set = find_as_set(set_name);
    if (!set) {
      ++missing;
      continue;
    }
    for (const auto& member : set->members) {
      if (member.is_asn()) {
        out.push_back(*member.asn);
      } else {
        stack.emplace_back(member.set_name, depth + 1);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (missing_sets) *missing_sets = missing;
  return out;
}

}  // namespace manrs::irr
