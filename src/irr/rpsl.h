// RPSL (Routing Policy Specification Language, RFC 2622) object parsing.
//
// IRR databases are distributed as flat RPSL text: objects are blocks of
// "attribute: value" lines separated by blank lines; values continue on
// following lines that start with whitespace or '+'; '#' begins a comment.
// The paper's "IRR dataset" is daily snapshots of 22 such databases; we
// parse and emit the identical representation.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace manrs::irr {

/// One attribute of an RPSL object, with source order preserved.
struct RpslAttribute {
  std::string name;   // lowercased
  std::string value;  // continuation lines joined with ' ', comments removed
};

/// A generic RPSL object: the class is the name of the first attribute
/// ("route", "aut-num", "as-set", ...).
struct RpslObject {
  std::vector<RpslAttribute> attributes;

  bool empty() const { return attributes.empty(); }
  std::string_view object_class() const {
    return attributes.empty() ? std::string_view{} : attributes[0].name;
  }
  /// The value of the first attribute, i.e. the primary key for most
  /// classes ("route: 192.0.2.0/24" -> "192.0.2.0/24").
  std::string_view key() const {
    return attributes.empty() ? std::string_view{} : attributes[0].value;
  }

  /// First value of attribute `name`, if present.
  std::optional<std::string_view> first(std::string_view name) const;
  /// All values of attribute `name`, in order.
  std::vector<std::string_view> all(std::string_view name) const;
};

/// Streaming parser over an RPSL document.
///
/// Resource limits: registry dumps come from the network, so a hostile or
/// corrupt document must not be able to grow one object without bound.
/// Objects are capped at kMaxAttributes attributes and attribute values at
/// kMaxValueLength bytes; input past either cap is dropped and counted as
/// malformed rather than accumulated.
class RpslParser {
 public:
  /// Largest accepted attribute count per object. Real IRR objects top out
  /// in the hundreds (large as-set member lists).
  static constexpr size_t kMaxAttributes = 4096;
  /// Largest accepted joined attribute value, in bytes.
  static constexpr size_t kMaxValueLength = 64 * 1024;

  explicit RpslParser(std::istream& in) : in_(in) {}

  /// Parse the next object; returns false at end of input. Malformed lines
  /// (no colon outside a continuation, or input beyond the resource caps)
  /// are skipped and counted.
  bool next(RpslObject& object);

  size_t malformed_lines() const { return malformed_; }

 private:
  std::istream& in_;
  size_t malformed_ = 0;
  std::string pending_;  // lookahead line owned between next() calls
  bool has_pending_ = false;
};

/// Parse a whole document.
std::vector<RpslObject> parse_rpsl(std::string_view text,
                                   size_t* malformed = nullptr);

/// Serialize one object back to RPSL text (attributes aligned, trailing
/// blank line included so concatenated objects round-trip).
void write_rpsl(std::ostream& out, const RpslObject& object);

}  // namespace manrs::irr
