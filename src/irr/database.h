// IRR databases and the multi-source registry.
//
// §2.2 of the paper: authoritative IRR databases are run by the five RIRs;
// other organizations (RADb et al.) run non-authoritative ones, and RADb
// additionally *mirrors* many databases into one collection. IrrDatabase
// models a single source; IrrRegistry models the collection a pipeline
// actually queries, with authoritative databases taking precedence and
// mirrored copies de-duplicated by (prefix, origin).
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "irr/objects.h"
#include "netbase/prefix_trie.h"

namespace manrs::irr {

/// A single IRR database (one "source" in RPSL terms).
class IrrDatabase {
 public:
  IrrDatabase(std::string name, bool authoritative)
      : name_(std::move(name)), authoritative_(authoritative) {}

  const std::string& name() const { return name_; }
  bool authoritative() const { return authoritative_; }

  void add_route(RouteObject route);
  void add_as_set(AsSetObject set);
  void add_aut_num(AutNumObject aut);

  /// Remove every route object registered at exactly (prefix, origin);
  /// returns the number removed (0 when absent).
  size_t remove_route(const net::Prefix& prefix, net::Asn origin);

  /// --- staged delta application (temporal snapshot engine) --------------
  /// The route-object equivalent of Rib::begin_delta()/finalize(): a day's
  /// IRR edits queue here and land in one finalize_delta() call, editing
  /// the trie in place instead of rebuilding the database. Queries between
  /// stage_*() calls still see the pre-delta objects.
  void stage_add_route(RouteObject route);
  void stage_remove_route(const net::Prefix& prefix, net::Asn origin);
  size_t staged_count() const { return staged_.size(); }

  /// Apply staged operations in order; returns the number of table
  /// mutations actually performed (removals of absent objects are no-ops).
  size_t finalize_delta();

  size_t route_count() const { return route_count_; }
  size_t as_set_count() const { return as_sets_.size(); }
  size_t aut_num_count() const { return aut_nums_.size(); }

  /// Route objects whose prefix covers `query` (least specific first).
  std::vector<RouteObject> covering_routes(const net::Prefix& query) const;

  /// Route objects registered exactly at `prefix`.
  const std::vector<RouteObject>& routes_at(const net::Prefix& prefix) const;

  /// True iff any route object covers `query`.
  bool covered(const net::Prefix& query) const {
    return routes_.any_covering(query);
  }

  const AsSetObject* find_as_set(std::string_view name) const;
  const AutNumObject* find_aut_num(net::Asn asn) const;

  template <typename Fn>
  void for_each_route(Fn&& fn) const {
    routes_.for_each(fn);
  }

  /// Load objects from RPSL text; returns the number of objects ingested.
  /// Unknown classes are ignored (real dumps carry mntner, person, ...).
  size_t load_rpsl(std::istream& in, size_t* malformed = nullptr);

  /// Dump all objects as RPSL (routes, as-sets, aut-nums).
  void write_rpsl(std::ostream& out) const;

 private:
  struct StagedOp {
    RouteObject route;  // for removals only prefix/origin are meaningful
    bool add;
  };

  std::string name_;
  bool authoritative_;
  net::PrefixTrie<RouteObject> routes_;
  size_t route_count_ = 0;
  std::unordered_map<std::string, AsSetObject> as_sets_;
  std::unordered_map<uint32_t, AutNumObject> aut_nums_;
  std::vector<StagedOp> staged_;
};

/// The queryable union of several IRR databases.
class IrrRegistry {
 public:
  /// Add a database; query order is authoritative databases first (in
  /// insertion order), then the rest.
  IrrDatabase& add_database(std::string name, bool authoritative);

  const IrrDatabase* find_database(std::string_view name) const;

  /// Mutable lookup for in-place delta application (the snapshot-series
  /// driver edits the authoritative database and the RADb mirror copy
  /// through this). nullptr when no database has that name.
  IrrDatabase* find_database_mut(std::string_view name);

  std::vector<const IrrDatabase*> databases() const;
  size_t total_routes() const;

  /// Mirror every object of `source` into the database named `target`
  /// (creating it as non-authoritative if needed), the way RADb ingests
  /// other registries. Duplicate (prefix, origin) pairs already present in
  /// the target are skipped; returns the number of objects copied.
  size_t mirror(const IrrDatabase& source, const std::string& target);

  /// All route objects covering `query`, de-duplicated by (prefix, origin)
  /// with authoritative sources winning. Least specific first.
  std::vector<RouteObject> covering_routes(const net::Prefix& query) const;

  /// True iff any database has a route object covering `query`.
  bool covered(const net::Prefix& query) const;

  /// Recursively expand an as-set to its member ASNs. Cycles are tolerated
  /// (each set expanded once); `max_depth` caps pathological nesting.
  /// Returns the sorted unique ASNs; unresolvable member sets are counted
  /// in `missing_sets` if provided.
  std::vector<net::Asn> expand_as_set(std::string_view name,
                                      size_t max_depth = 32,
                                      size_t* missing_sets = nullptr) const;

 private:
  const AsSetObject* find_as_set(std::string_view name) const;
  std::vector<std::unique_ptr<IrrDatabase>> databases_;
};

}  // namespace manrs::irr
