// IRR prefix-origin validation.
//
// §6.1 of the paper: "For IRR, we apply the same classification method as
// RPKI, but since there is no standardized max length attribute in IRR, we
// consider the prefix length as the max length value for IRR entries."
// So a route that is more specific than a registered route object with the
// matching origin classifies as Invalid Length (which §3 treats as
// MANRS-conformant, reflecting traffic-engineering de-aggregation).
#pragma once

#include <string_view>

#include "irr/database.h"
#include "netbase/asn.h"
#include "netbase/prefix.h"

namespace manrs::irr {

enum class IrrStatus : uint8_t {
  kValid = 0,
  kInvalidAsn = 1,
  kInvalidLength = 2,
  kNotFound = 3,
};

std::string_view to_string(IrrStatus s);

inline bool is_invalid(IrrStatus s) { return s == IrrStatus::kInvalidAsn; }

/// Classify (prefix, origin) against the registry's route objects.
IrrStatus validate_route(const IrrRegistry& registry,
                         const net::Prefix& route, net::Asn origin);

/// Same decision procedure over a single database (used by per-source
/// accuracy comparisons).
IrrStatus validate_route(const IrrDatabase& database,
                         const net::Prefix& route, net::Asn origin);

}  // namespace manrs::irr
