#include "irr/rpsl.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/strings.h"

namespace manrs::irr {

std::optional<std::string_view> RpslObject::first(
    std::string_view name) const {
  for (const auto& attr : attributes) {
    if (attr.name == name) return std::string_view(attr.value);
  }
  return std::nullopt;
}

std::vector<std::string_view> RpslObject::all(std::string_view name) const {
  std::vector<std::string_view> out;
  for (const auto& attr : attributes) {
    if (attr.name == name) out.emplace_back(attr.value);
  }
  return out;
}

namespace {
/// Strip an RPSL end-of-line comment. '#' only starts a comment; there is
/// no escaping in practice.
std::string_view strip_comment(std::string_view line) {
  size_t pos = line.find('#');
  return pos == std::string_view::npos ? line : line.substr(0, pos);
}
}  // namespace

bool RpslParser::next(RpslObject& object) {
  std::string line;

  auto get_line = [&]() -> bool {
    if (has_pending_) {
      line = std::move(pending_);
      has_pending_ = false;
      return true;
    }
    if (!std::getline(in_, line)) return false;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    return true;
  };

  // Outer loop: a block whose lines are all malformed yields no
  // attributes; skip it and keep scanning rather than ending the stream.
  while (true) {
    object.attributes.clear();

    // Skip leading blank/comment-only lines.
    while (true) {
      if (!get_line()) return false;
      std::string_view content = manrs::util::trim(strip_comment(line));
      if (!content.empty()) break;
    }

    // `line` is the first line of the object.
    while (true) {
      std::string_view raw = line;
      std::string_view content = strip_comment(raw);
      if (manrs::util::trim(content).empty()) break;  // object terminator

      bool continuation = !object.attributes.empty() && !raw.empty() &&
                          (raw[0] == ' ' || raw[0] == '\t' || raw[0] == '+');
      if (continuation) {
        std::string_view cont = content;
        if (!cont.empty() && cont[0] == '+') cont.remove_prefix(1);
        cont = manrs::util::trim(cont);
        auto& attr = object.attributes.back();
        if (!cont.empty()) {
          if (attr.value.size() + cont.size() + 1 > kMaxValueLength) {
            // Value bomb: drop the excess instead of growing without bound.
            ++malformed_;
          } else {
            if (!attr.value.empty()) attr.value += ' ';
            attr.value.append(cont);
          }
        }
      } else {
        size_t colon = content.find(':');
        if (colon == std::string_view::npos) {
          ++malformed_;
        } else {
          RpslAttribute attr;
          attr.name = manrs::util::to_lower(
              manrs::util::trim(content.substr(0, colon)));
          attr.value =
              std::string(manrs::util::trim(content.substr(colon + 1)));
          if (attr.name.empty() || attr.value.size() > kMaxValueLength ||
              object.attributes.size() >= kMaxAttributes) {
            ++malformed_;
          } else {
            object.attributes.push_back(std::move(attr));
          }
        }
      }

      if (!std::getline(in_, line)) break;
      if (!line.empty() && line.back() == '\r') line.pop_back();
    }
    if (!object.attributes.empty()) return true;
  }
}

std::vector<RpslObject> parse_rpsl(std::string_view text, size_t* malformed) {
  std::istringstream in{std::string(text)};
  RpslParser parser(in);
  std::vector<RpslObject> out;
  RpslObject obj;
  while (parser.next(obj)) out.push_back(obj);
  if (malformed) *malformed = parser.malformed_lines();
  return out;
}

void write_rpsl(std::ostream& out, const RpslObject& object) {
  for (const auto& attr : object.attributes) {
    out << attr.name << ":";
    // Column-align values the way whois output does (16-column gutter).
    for (size_t pad = attr.name.size() + 1; pad < 16; ++pad) out << ' ';
    out << attr.value << '\n';
  }
  out << '\n';
}

}  // namespace manrs::irr
