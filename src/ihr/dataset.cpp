#include "ihr/dataset.h"

#include <istream>
#include <ostream>
#include <string>

#include "util/csv.h"
#include "util/parallel.h"
#include "util/strings.h"

namespace manrs::ihr {

namespace {

rpki::RpkiStatus parse_rpki_status(std::string_view s) {
  if (s == "Valid") return rpki::RpkiStatus::kValid;
  if (s == "Invalid") return rpki::RpkiStatus::kInvalidAsn;
  if (s == "InvalidLength") return rpki::RpkiStatus::kInvalidLength;
  return rpki::RpkiStatus::kNotFound;
}

irr::IrrStatus parse_irr_status(std::string_view s) {
  if (s == "Valid") return irr::IrrStatus::kValid;
  if (s == "Invalid") return irr::IrrStatus::kInvalidAsn;
  if (s == "InvalidLength") return irr::IrrStatus::kInvalidLength;
  return irr::IrrStatus::kNotFound;
}

}  // namespace

IhrSnapshotBuilder::IhrSnapshotBuilder(const sim::PropagationSim& sim,
                                       std::vector<net::Asn> vantage_points,
                                       double trim)
    : sim_(sim), vantage_points_(std::move(vantage_points)), trim_(trim) {}

IhrSnapshot IhrSnapshotBuilder::build(
    const std::vector<bgp::PrefixOrigin>& announcements,
    const rpki::VrpStore& vrps, const irr::IrrRegistry& irr_registry) const {
  IhrSnapshot snapshot;

  // Classify every announcement with the real validators, then group by
  // (origin, droppability class): groups propagate identically.
  struct Classified {
    bgp::PrefixOrigin po;
    rpki::RpkiStatus rpki;
    irr::IrrStatus irr;
  };
  std::vector<sim::Announcement> sim_announcements;
  sim_announcements.reserve(announcements.size());
  std::vector<Classified> rows;
  rows.reserve(announcements.size());
  for (const auto& po : announcements) {
    Classified c;
    c.po = po;
    c.rpki = vrps.validate(po.prefix, po.origin);
    c.irr = irr::validate_route(irr_registry, po.prefix, po.origin);
    rows.push_back(c);
    sim::AnnouncementClass cls;
    cls.rpki_invalid = rpki::is_invalid(c.rpki);
    cls.irr_invalid = c.irr == irr::IrrStatus::kInvalidAsn;
    cls.variant = (cls.rpki_invalid || cls.irr_invalid)
                      ? sim::filter_variant(po.prefix)
                      : 0;
    sim_announcements.push_back(sim::Announcement{po.prefix, po.origin, cls});
  }

  // Per-group propagation, shared across all prefixes in the group.
  // group_of[i] is announcement i's index into the group (and slot)
  // vectors -- no string keys, no hash lookups on the emit path.
  std::vector<size_t> group_of;
  auto groups = sim::group_announcements(sim_announcements, &group_of);
  // One batched resolve for every group. When the same simulator already
  // served RouteCollector, the collector's propagations are all cache
  // hits here; fresh misses run through the lane engine batch_width()
  // origins per sweep.
  std::vector<sim::PropagationRequest> requests;
  requests.reserve(groups.size());
  for (const auto& group : groups) {
    requests.push_back(sim::PropagationRequest{group.origin, group.cls});
  }
  const std::vector<sim::PropagationResultPtr> results =
      sim_.propagate_cached(requests);

  struct GroupView {
    std::vector<HegemonyScore> hegemony;      // transit scores
    std::vector<bool> transit_via_customer;   // aligned with hegemony
    uint32_t visibility = 0;
  };
  // Each group's hegemony estimate depends only on const simulator state
  // and its result slot: fan the groups out and fill index-addressed
  // slots (determinism contract; see docs/performance.md). Per-vantage
  // paths are arena views scoped to this group's iteration -- each worker
  // thread reuses one arena, so vantages sharing a customer-cone suffix
  // share its hops.
  std::vector<GroupView> group_views(groups.size());
  util::parallel_for(groups.size(), [&](size_t g) {
    thread_local sim::PathArena arena;
    const sim::PropagationResult& result = *results[g];
    const std::vector<sim::PathView> views =
        sim_.extract_paths(result, vantage_points_, arena);
    std::vector<sim::PathView> paths;  // one per vantage with a route
    paths.reserve(views.size());
    for (const sim::PathView& path : views) {
      if (!path.empty()) paths.push_back(path);
    }
    GroupView view;
    view.visibility = static_cast<uint32_t>(paths.size());
    view.hegemony = compute_hegemony(paths, trim_);
    view.transit_via_customer.reserve(view.hegemony.size());
    for (const auto& score : view.hegemony) {
      int32_t id = sim_.indexer().id_of(score.asn);
      bool via_customer =
          id >= 0 && result.source[static_cast<size_t>(id)] ==
                         sim::RouteSource::kCustomer;
      view.transit_via_customer.push_back(via_customer);
    }
    group_views[g] = std::move(view);
  });

  // Emit records.
  snapshot.prefix_origins.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    const Classified& c = rows[i];
    const GroupView& view = group_views[group_of[i]];
    PrefixOriginRecord record;
    record.prefix = c.po.prefix;
    record.origin = c.po.origin;
    record.rpki = c.rpki;
    record.irr = c.irr;
    record.visibility = view.visibility;
    snapshot.prefix_origins.push_back(record);

    for (size_t t = 0; t < view.hegemony.size(); ++t) {
      if (view.hegemony[t].asn == c.po.origin) continue;  // trivial transit
      TransitRecord transit;
      transit.prefix = c.po.prefix;
      transit.origin = c.po.origin;
      transit.transit = view.hegemony[t].asn;
      transit.hegemony = view.hegemony[t].score;
      transit.via_customer = view.transit_via_customer[t];
      transit.rpki = c.rpki;
      transit.irr = c.irr;
      snapshot.transits.push_back(transit);
    }
  }
  return snapshot;
}

void write_prefix_origin_csv(std::ostream& out,
                             const std::vector<PrefixOriginRecord>& records) {
  util::CsvWriter writer(out);
  writer.write_row(std::vector<std::string_view>{
      "prefix", "originasn", "rpki_status", "irr_status", "visibility"});
  for (const auto& r : records) {
    writer.write_row(std::vector<std::string_view>{
        r.prefix.to_string(), std::to_string(r.origin.value()),
        rpki::to_string(r.rpki), irr::to_string(r.irr),
        std::to_string(r.visibility)});
  }
}

std::vector<PrefixOriginRecord> read_prefix_origin_csv(std::istream& in,
                                                       size_t* bad_rows) {
  util::CsvReader reader(in);
  std::vector<PrefixOriginRecord> out;
  size_t bad = 0;
  util::CsvRow row;
  while (reader.next(row)) {
    if (!row.empty() && row[0] == "prefix") continue;  // header
    if (row.size() < 5) {
      ++bad;
      continue;
    }
    auto prefix = net::Prefix::parse(row[0]);
    auto origin = net::Asn::parse(row[1]);
    auto visibility = util::parse_uint<uint32_t>(row[4]);
    if (!prefix || !origin || !visibility) {
      ++bad;
      continue;
    }
    PrefixOriginRecord r;
    r.prefix = *prefix;
    r.origin = *origin;
    r.rpki = parse_rpki_status(row[2]);
    r.irr = parse_irr_status(row[3]);
    r.visibility = *visibility;
    out.push_back(r);
  }
  if (bad_rows) *bad_rows = bad;
  return out;
}

void write_transit_csv(std::ostream& out,
                       const std::vector<TransitRecord>& records) {
  util::CsvWriter writer(out);
  writer.write_row(std::vector<std::string_view>{
      "prefix", "originasn", "transitasn", "hegemony", "via_customer",
      "rpki_status", "irr_status"});
  char hege[32];
  for (const auto& r : records) {
    std::snprintf(hege, sizeof(hege), "%.6f", r.hegemony);
    writer.write_row(std::vector<std::string_view>{
        r.prefix.to_string(), std::to_string(r.origin.value()),
        std::to_string(r.transit.value()), hege,
        r.via_customer ? "1" : "0", rpki::to_string(r.rpki),
        irr::to_string(r.irr)});
  }
}

std::vector<TransitRecord> read_transit_csv(std::istream& in,
                                            size_t* bad_rows) {
  util::CsvReader reader(in);
  std::vector<TransitRecord> out;
  size_t bad = 0;
  util::CsvRow row;
  while (reader.next(row)) {
    if (!row.empty() && row[0] == "prefix") continue;
    if (row.size() < 7) {
      ++bad;
      continue;
    }
    auto prefix = net::Prefix::parse(row[0]);
    auto origin = net::Asn::parse(row[1]);
    auto transit = net::Asn::parse(row[2]);
    auto hegemony = util::parse_double(row[3]);
    if (!prefix || !origin || !transit || !hegemony) {
      ++bad;
      continue;
    }
    TransitRecord r;
    r.prefix = *prefix;
    r.origin = *origin;
    r.transit = *transit;
    r.hegemony = *hegemony;
    r.via_customer = row[4] == "1";
    r.rpki = parse_rpki_status(row[5]);
    r.irr = parse_irr_status(row[6]);
    out.push_back(r);
  }
  if (bad_rows) *bad_rows = bad;
  return out;
}

}  // namespace manrs::ihr
