// AS Hegemony (Fontugne, Shah, Aben -- PAM 2018).
//
// Hegemony estimates, from sampled BGP paths, the fraction of paths toward
// a destination that transit a given AS; scores are in [0, 1]. Robustness
// against vantage-point bias comes from trimming: per-AS indicator values
// across viewpoints are sorted and the top and bottom `trim` fraction are
// discarded before averaging (the paper's default trim is 10%).
//
// §5.3 of the MANRS paper: "IHR considers the origin AS of each prefix a
// trivial transit AS with hegemony value of 1"; callers split that record
// out, as IHR does.
#pragma once

#include <vector>

#include "bgp/route.h"
#include "netbase/asn.h"
#include "simulator/propagation.h"

namespace manrs::ihr {

struct HegemonyScore {
  net::Asn asn;
  double score = 0.0;

  friend bool operator==(const HegemonyScore&,
                         const HegemonyScore&) = default;
};

/// Compute hegemony scores from one AS path per vantage point toward a
/// single destination. Each path is [vantage, ..., origin]; the vantage AS
/// itself is not counted as a transit on its own path (a viewpoint is not
/// evidence of its own centrality), every other hop is. ASes with a zero
/// post-trim score are omitted. Result is sorted by descending score, ties
/// by ascending ASN.
std::vector<HegemonyScore> compute_hegemony(
    const std::vector<bgp::AsPath>& paths, double trim = 0.1);

/// Same computation over arena-backed path views (the batched pipeline's
/// path representation; see sim::PropagationSim::extract_paths). Scores
/// are identical to the owned-path overload on equal hop sequences.
std::vector<HegemonyScore> compute_hegemony(
    const std::vector<sim::PathView>& paths, double trim = 0.1);

/// Trimmed mean of 0/1 indicator samples; exposed for tests and the
/// trim-sensitivity ablation bench.
double trimmed_indicator_mean(size_t ones, size_t total, double trim);

}  // namespace manrs::ihr
