// The Internet Health Report datasets (§5.3 of the paper).
//
// The paper consumes two IHR products:
//   * the *prefix-origin dataset*: routed (prefix, origin AS) pairs with
//     their RPKI and IRR statuses (the origin is the "trivial transit"
//     with hegemony 1, split out of the transit data);
//   * the *transit dataset*: for each prefix-origin pair, the transit ASes
//     observed on paths toward it with their AS-hegemony scores.
//
// IhrSnapshotBuilder recomputes both from the simulator's paths, running
// the real RFC 6811 / IRR validators over each announcement -- i.e. the
// IHR ROV module re-implemented. The CSV layouts mirror the fields the
// paper lists: prefix, origin AS, RPKI status, IRR status, transit AS,
// AS hegemony.
#pragma once

#include <iosfwd>
#include <vector>

#include "bgp/route.h"
#include "ihr/hegemony.h"
#include "irr/validation.h"
#include "netbase/asn.h"
#include "netbase/prefix.h"
#include "rpki/validation.h"
#include "simulator/collector.h"
#include "simulator/propagation.h"

namespace manrs::ihr {

struct PrefixOriginRecord {
  net::Prefix prefix;
  net::Asn origin;
  rpki::RpkiStatus rpki = rpki::RpkiStatus::kNotFound;
  irr::IrrStatus irr = irr::IrrStatus::kNotFound;
  /// Number of vantage points with a route (visibility).
  uint32_t visibility = 0;
};

struct TransitRecord {
  net::Prefix prefix;
  net::Asn origin;
  net::Asn transit;
  double hegemony = 0.0;
  /// True when the transit learned this route from a direct customer;
  /// Formula 6 (Action 1 conformance) scopes to customer announcements.
  bool via_customer = false;
  rpki::RpkiStatus rpki = rpki::RpkiStatus::kNotFound;
  irr::IrrStatus irr = irr::IrrStatus::kNotFound;
};

struct IhrSnapshot {
  std::vector<PrefixOriginRecord> prefix_origins;
  std::vector<TransitRecord> transits;
};

class IhrSnapshotBuilder {
 public:
  /// `vantage_points` are the collector-peer ASes whose paths feed the
  /// hegemony estimation; `trim` is the hegemony trim fraction.
  IhrSnapshotBuilder(const sim::PropagationSim& sim,
                     std::vector<net::Asn> vantage_points,
                     double trim = 0.1);

  /// Build a snapshot. Announcements are bare (prefix, origin) pairs; the
  /// builder classifies each against `vrps` and `irr` (that classification
  /// both labels the records and decides droppability during propagation,
  /// as in the real system where routers validate the same data).
  IhrSnapshot build(const std::vector<bgp::PrefixOrigin>& announcements,
                    const rpki::VrpStore& vrps,
                    const irr::IrrRegistry& irr_registry) const;

 private:
  const sim::PropagationSim& sim_;
  std::vector<net::Asn> vantage_points_;
  double trim_;
};

/// CSV I/O for both datasets (used to archive snapshots and by tests).
void write_prefix_origin_csv(std::ostream& out,
                             const std::vector<PrefixOriginRecord>& records);
std::vector<PrefixOriginRecord> read_prefix_origin_csv(
    std::istream& in, size_t* bad_rows = nullptr);
void write_transit_csv(std::ostream& out,
                       const std::vector<TransitRecord>& records);
std::vector<TransitRecord> read_transit_csv(std::istream& in,
                                            size_t* bad_rows = nullptr);

}  // namespace manrs::ihr
