#include "ihr/hegemony.h"

#include <algorithm>
#include <cmath>

namespace manrs::ihr {

double trimmed_indicator_mean(size_t ones, size_t total, double trim) {
  if (total == 0) return 0.0;
  size_t cut = static_cast<size_t>(
      std::floor(trim * static_cast<double>(total)));
  if (2 * cut >= total) return 0.0;
  size_t kept = total - 2 * cut;
  size_t zeros = total - ones;
  // Sorted indicators are [0]*zeros + [1]*ones; the kept window is
  // [cut, total-cut). Count the ones inside it.
  size_t window_begin = cut;
  size_t window_end = total - cut;
  size_t ones_begin = zeros;  // first index holding a 1
  size_t ones_in_window = 0;
  if (ones_begin < window_end) {
    size_t lo = std::max(window_begin, ones_begin);
    ones_in_window = window_end > lo ? window_end - lo : 0;
  }
  return static_cast<double>(ones_in_window) / static_cast<double>(kept);
}

namespace {

/// Shared core of both compute_hegemony overloads. `hops_of` maps a path
/// to its (hop pointer, hop count) pair; everything downstream of that is
/// representation-independent, so owned AsPaths and arena PathViews score
/// identically by construction.
template <typename Path, typename HopsOf>
std::vector<HegemonyScore> hegemony_over(const std::vector<Path>& paths,
                                         double trim, HopsOf hops_of) {
  size_t total = paths.size();
  if (total == 0) return {};

  // Count, per AS, in how many viewpoint paths it appears as a transit.
  // Gather every appearance into a flat vector and count runs after one
  // sort: groups see a few hundred transit hops over a few dozen distinct
  // ASes, where sorting a small contiguous array beats hashing each hop.
  std::vector<uint32_t> transits;
  transits.reserve(total * 4);
  for (const auto& path : paths) {
    const auto [hops, len] = hops_of(path);
    // Skip hop 0 (the vantage itself); de-duplicate prepended hops.
    uint32_t prev = 0;
    bool have_prev = false;
    for (size_t i = 1; i < len; ++i) {
      uint32_t value = hops[i].value();
      if (have_prev && value == prev) continue;
      transits.push_back(value);
      prev = value;
      have_prev = true;
    }
  }
  std::sort(transits.begin(), transits.end());

  std::vector<HegemonyScore> out;
  for (size_t i = 0; i < transits.size();) {
    const uint32_t asn = transits[i];
    size_t j = i + 1;
    while (j < transits.size() && transits[j] == asn) ++j;
    double score = trimmed_indicator_mean(j - i, total, trim);
    if (score > 0.0) {
      out.push_back(HegemonyScore{net::Asn(asn), score});
    }
    i = j;
  }
  std::sort(out.begin(), out.end(),
            [](const HegemonyScore& a, const HegemonyScore& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.asn < b.asn;
            });
  return out;
}

}  // namespace

std::vector<HegemonyScore> compute_hegemony(
    const std::vector<bgp::AsPath>& paths, double trim) {
  return hegemony_over(paths, trim, [](const bgp::AsPath& path) {
    const auto& hops = path.hops();
    return std::pair<const net::Asn*, size_t>(hops.data(), hops.size());
  });
}

std::vector<HegemonyScore> compute_hegemony(
    const std::vector<sim::PathView>& paths, double trim) {
  return hegemony_over(paths, trim, [](const sim::PathView& path) {
    return std::pair<const net::Asn*, size_t>(path.hops,
                                              static_cast<size_t>(path.len));
  });
}

}  // namespace manrs::ihr
