#include "ihr/hegemony.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace manrs::ihr {

double trimmed_indicator_mean(size_t ones, size_t total, double trim) {
  if (total == 0) return 0.0;
  size_t cut = static_cast<size_t>(
      std::floor(trim * static_cast<double>(total)));
  if (2 * cut >= total) return 0.0;
  size_t kept = total - 2 * cut;
  size_t zeros = total - ones;
  // Sorted indicators are [0]*zeros + [1]*ones; the kept window is
  // [cut, total-cut). Count the ones inside it.
  size_t window_begin = cut;
  size_t window_end = total - cut;
  size_t ones_begin = zeros;  // first index holding a 1
  size_t ones_in_window = 0;
  if (ones_begin < window_end) {
    size_t lo = std::max(window_begin, ones_begin);
    ones_in_window = window_end > lo ? window_end - lo : 0;
  }
  return static_cast<double>(ones_in_window) / static_cast<double>(kept);
}

std::vector<HegemonyScore> compute_hegemony(
    const std::vector<bgp::AsPath>& paths, double trim) {
  size_t total = paths.size();
  if (total == 0) return {};

  // Count, per AS, in how many viewpoint paths it appears as a transit.
  std::unordered_map<uint32_t, size_t> appearances;
  for (const auto& path : paths) {
    const auto& hops = path.hops();
    // Skip hop 0 (the vantage itself); de-duplicate prepended hops.
    uint32_t prev = 0;
    bool have_prev = false;
    for (size_t i = 1; i < hops.size(); ++i) {
      uint32_t value = hops[i].value();
      if (have_prev && value == prev) continue;
      ++appearances[value];
      prev = value;
      have_prev = true;
    }
  }

  std::vector<HegemonyScore> out;
  out.reserve(appearances.size());
  for (const auto& [asn, ones] : appearances) {
    double score = trimmed_indicator_mean(ones, total, trim);
    if (score > 0.0) {
      out.push_back(HegemonyScore{net::Asn(asn), score});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const HegemonyScore& a, const HegemonyScore& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.asn < b.asn;
            });
  return out;
}

}  // namespace manrs::ihr
