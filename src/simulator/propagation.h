// BGP route propagation over an AS topology with Gao-Rexford policies.
//
// The paper observes the real Internet through RouteViews/RIS; this
// simulator produces the equivalent observable -- per-AS best paths toward
// each announcement -- from a synthetic topology. Routing follows the
// standard valley-free model:
//
//   * an AS prefers routes learned from customers over peers over
//     providers, then shorter AS paths, then the lowest next-hop ASN;
//   * routes learned from a customer are exported to everyone;
//   * routes learned from a peer or provider are exported only to
//     customers.
//
// That yields the classic three-phase computation (e.g. Gill et al.):
// customer routes climb provider edges, peer routes take one lateral hop,
// then routes descend customer edges. Each phase is O(V+E), so a full
// propagation is linear -- cheap enough to run once per (origin,
// announcement class).
//
// Filtering: each AS has a FilterPolicy. ROV drops RPKI-invalid
// announcements from any neighbor (§2.3); customer/peer ingress filtering
// (MANRS Action 1, §2.4) drops announcements whose RPKI or IRR status is
// invalid when learned on the corresponding adjacency. A dropped
// announcement is neither installed nor re-exported by that AS.
//
// Engine layout (see docs/performance.md, "The propagation engine"):
//   * adjacency is CSR (flat offset/edge arrays), with dense ids assigned
//     in ASN-ascending order so every tie-break compares ids directly;
//   * per-(policy, adjacency, class) drop decisions are precomputed into
//     packed bitsets, turning the BFS inner-loop filter check into one
//     bit test;
//   * per-call scratch lives in a reusable, epoch-stamped
//     PropagationWorkspace, so steady-state propagation allocates almost
//     nothing beyond its output;
//   * the dominant downhill phase is branchless: per-AS packed order
//     keys folded with conditional moves instead of an unpredictable
//     install-or-skip branch per edge (see propagate_id);
//   * propagate_cached() memoizes results by (origin, effective drop
//     signature), letting the collector and hegemony stages share one
//     propagation per group -- and letting classes no policy tells apart
//     collapse onto a single cache entry.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "astopo/graph.h"
#include "bgp/route.h"
#include "netbase/asn.h"

namespace manrs::sim {

/// Validity flags an announcement carries through the simulator. (The
/// simulator does not re-derive them; the caller classifies against its
/// VRP/IRR stores and passes the result in.)
///
/// `variant` models the well-known leakiness of manually maintained
/// prefix-list filters: invalid announcements are bucketed into
/// kFilterVariants classes (assigned by prefix hash), and an AS with
/// customer/peer strictness s drops only buckets < s. Strictness
/// kFilterVariants means "drops everything invalid"; ROV, which routers
/// apply uniformly, is modeled as all-or-nothing.
struct AnnouncementClass {
  bool rpki_invalid = false;
  bool irr_invalid = false;
  uint8_t variant = 0;  // meaningful only when some flag is set

  friend bool operator==(const AnnouncementClass&,
                         const AnnouncementClass&) = default;
};

inline constexpr uint8_t kFilterVariants = 4;

/// Deterministic variant bucket for a prefix: FNV-1a over the prefix's
/// wire bytes (family, length, 16 address bytes big-endian), mod
/// kFilterVariants. Never std::hash -- the bucket feeds propagation and
/// therefore output bytes, which must not depend on the standard library
/// (util/det_hash.h).
uint8_t filter_variant(const net::Prefix& prefix);

/// Per-AS ingress filtering behaviour.
struct FilterPolicy {
  /// Full ROV deployment: drop RPKI-invalid routes from any neighbor.
  bool rov = false;
  /// MANRS Action 1 style filtering of customer announcements: drop
  /// customer-learned RPKI/IRR-invalid routes in variant buckets
  /// [0, customer_strictness). 0 = no filtering, kFilterVariants = strict.
  uint8_t customer_strictness = 0;
  /// Ingress filtering on peers (MANRS CDN Action 1 covers "peers and
  /// customers").
  uint8_t peer_strictness = 0;
};

/// How a route was learned at an AS.
enum class RouteSource : uint8_t {
  kNone = 0,
  kProvider = 1,
  kPeer = 2,
  kCustomer = 3,
  kOrigin = 4,
};

/// Result of one propagation: per-AS state indexed by dense AS id.
struct PropagationResult {
  static constexpr int32_t kNoRoute = -1;

  std::vector<RouteSource> source;  // how each AS learned the route
  std::vector<int32_t> next_hop;    // dense id of the neighbor toward origin
  std::vector<uint16_t> distance;   // AS-path length in hops from origin

  bool reached(int32_t id) const {
    return source[static_cast<size_t>(id)] != RouteSource::kNone;
  }
};

/// Shared, immutable propagation result (the propagation cache's unit).
using PropagationResultPtr = std::shared_ptr<const PropagationResult>;

/// Outcome of path reconstruction (path_from). kNoRoute is the normal
/// "vantage never learned the route" case; kBrokenChain means the
/// next_hop chain itself is corrupt (a cycle, an out-of-range id, or a
/// hop with no installed route) -- possible only with a damaged or
/// mismatched PropagationResult, never with one this engine produced.
enum class PathStatus : uint8_t {
  kOk = 0,
  kNoRoute = 1,
  kBrokenChain = 2,
};

/// Maps ASNs to dense ids [0, n) and back. Ids are assigned in
/// ASN-ascending order, so `id_a < id_b` iff `asn_of(id_a) < asn_of(id_b)`
/// -- the propagation tie-breaks rely on this to compare ids directly.
class AsIndexer {
 public:
  explicit AsIndexer(const astopo::AsGraph& graph);

  int32_t id_of(net::Asn asn) const {
    auto it = ids_.find(asn.value());
    return it == ids_.end() ? -1 : it->second;
  }
  net::Asn asn_of(int32_t id) const { return asns_[static_cast<size_t>(id)]; }
  size_t size() const { return asns_.size(); }
  const std::vector<net::Asn>& asns() const { return asns_; }

 private:
  std::unordered_map<uint32_t, int32_t> ids_;
  std::vector<net::Asn> asns_;
};

/// Reusable per-call scratch for propagate(). Reset is O(1): per-AS state
/// is valid only when its stamp matches the current epoch, so a new call
/// bumps the epoch instead of clearing n-sized arrays. One workspace
/// serves any number of sequential calls (grow-only across simulators of
/// different sizes); it must not be shared between concurrent calls --
/// parallel callers keep one per worker thread.
struct PropagationWorkspace {
  struct PeerOffer {
    int32_t to;
    int32_t from;
    uint16_t dist;
  };

  /// Per-AS state, packed into one 8-byte slot. The BFS inner loops are
  /// bound by random reads of neighbor state; keeping stamp, next hop,
  /// distance, and source together means each neighbor visit touches
  /// exactly one cache line instead of one per parallel array.
  struct NodeState {
    int32_t next_hop;
    uint16_t distance;
    RouteSource source;
    uint8_t stamp;  // valid iff == workspace epoch
  };
  static_assert(sizeof(NodeState) == 8, "NodeState must stay one 8-byte slot");

  uint8_t epoch = 0;
  std::vector<NodeState> node;
  std::vector<int32_t> touched;  // ids stamped this epoch, in set order
  std::vector<int32_t> frontier;
  std::vector<int32_t> next;
  std::vector<PeerOffer> offers;
  std::vector<std::vector<int32_t>> buckets;  // phase-3 seeds by distance
  // Phase-3 scratch: the branchless descent keeps one packed order key
  // per AS (smaller = better route) and a change bitmap per level; see
  // propagate_id for the key encoding.
  std::vector<uint64_t> key;
  std::vector<uint64_t> changed;  // 1 bit per AS; all-zero between calls

  /// Start a new call over n ASes: bump the epoch (full re-stamp only on
  /// first use, growth, or every 255th call when the 8-bit epoch wraps)
  /// and clear the small lists.
  void begin(size_t n) {
    if (node.size() < n) {
      node.assign(n, NodeState{});
      key.resize(n);
      changed.assign((n + 63) / 64, 0);
      epoch = 0;
    }
    if (++epoch == 0) {  // uint8 wrap: invalidate all stamps
      for (NodeState& s : node) s.stamp = 0;
      epoch = 1;
    }
    touched.clear();
    frontier.clear();
    next.clear();
    offers.clear();
  }

  bool stamped(int32_t v) const {
    return node[static_cast<size_t>(v)].stamp == epoch;
  }

  /// Install a route at v and record it in the touched list.
  void install(int32_t v, RouteSource src, int32_t hop, uint16_t dist) {
    NodeState& s = node[static_cast<size_t>(v)];
    s.stamp = epoch;
    s.source = src;
    s.next_hop = hop;
    s.distance = dist;
    touched.push_back(v);
  }
};

/// Propagation-cache counters (cumulative over the simulator's lifetime;
/// entries/bytes reflect the current contents).
struct PropagationCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;  // computed fresh (inserted unless over capacity)
  size_t entries = 0;
  size_t bytes = 0;
};

class PropagationSim {
 public:
  explicit PropagationSim(const astopo::AsGraph& graph);
  ~PropagationSim();
  PropagationSim(PropagationSim&&) noexcept;
  PropagationSim& operator=(PropagationSim&&) noexcept;

  const AsIndexer& indexer() const { return indexer_; }

  /// Set the filtering policy of one AS (default: no filtering).
  /// Invalidates the precomputed drop masks and the propagation cache;
  /// not safe concurrently with propagate() calls.
  void set_policy(net::Asn asn, const FilterPolicy& policy);
  const FilterPolicy& policy(net::Asn asn) const;

  /// Propagate an announcement originated by `origin` with the given
  /// validity class. Returns per-AS routing state. Always computes (no
  /// cache); the workspace overload reuses caller scratch.
  PropagationResult propagate(net::Asn origin,
                              const AnnouncementClass& cls) const;
  PropagationResult propagate(net::Asn origin, const AnnouncementClass& cls,
                              PropagationWorkspace& workspace) const;

  /// Memoized propagation, shared across pipeline stages: results are
  /// keyed by (origin, effective drop signature), so classes that no
  /// policy distinguishes -- all valid classes, and invalid variants with
  /// identical drop masks -- collapse onto one cached propagation. The
  /// returned pointer stays valid after clear_cache(). Safe to call
  /// concurrently. When the cache is disabled this computes fresh.
  PropagationResultPtr propagate_cached(net::Asn origin,
                                        const AnnouncementClass& cls) const;

  /// Cache controls. Capacity defaults to MANRS_PROP_CACHE_MB megabytes
  /// (2048 when unset); at capacity, new results are returned uncached.
  /// Disabling also clears. Cached bytes are pure function values, so
  /// outputs are byte-identical with the cache on or off.
  void set_cache_enabled(bool enabled);
  bool cache_enabled() const;
  void clear_cache();
  PropagationCacheStats cache_stats() const;

  /// Reconstruct the AS path from `vantage` to the origin (inclusive of
  /// both): [vantage, ..., origin]. Empty when the vantage has no route.
  /// The status overload distinguishes "no route" from a corrupt
  /// next_hop chain (see PathStatus); both return an empty path.
  bgp::AsPath path_from(const PropagationResult& result,
                        net::Asn vantage) const;
  bgp::AsPath path_from(const PropagationResult& result, net::Asn vantage,
                        PathStatus* status) const;

 private:
  /// Flat compressed-sparse-row adjacency: neighbors of u are
  /// edges[offsets[u] .. offsets[u+1]), ascending by id (== by ASN).
  struct Csr {
    std::vector<uint32_t> offsets;
    std::vector<int32_t> edges;

    const int32_t* begin(int32_t u) const {
      return edges.data() + offsets[static_cast<size_t>(u)];
    }
    const int32_t* end(int32_t u) const {
      return edges.data() + offsets[static_cast<size_t>(u) + 1];
    }
  };

  // Mutable engine state (lazily built drop masks, the propagation
  // cache) lives behind a pointer so the simulator stays movable; the
  // definition is in propagation.cpp.
  struct State;

  void ensure_masks() const;
  size_t class_index(const AnnouncementClass& cls) const;
  const uint64_t* mask_for(size_t cls_index, size_t adjacency) const;
  PropagationResult propagate_id(int32_t origin_id,
                                 const AnnouncementClass& cls,
                                 PropagationWorkspace& ws) const;

  AsIndexer indexer_;
  Csr providers_;  // providers_.edges of u: ids that are providers of u
  Csr customers_;
  Csr peers_;
  std::vector<FilterPolicy> policies_;
  std::unique_ptr<State> state_;
};

}  // namespace manrs::sim
