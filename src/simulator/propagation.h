// BGP route propagation over an AS topology with Gao-Rexford policies.
//
// The paper observes the real Internet through RouteViews/RIS; this
// simulator produces the equivalent observable -- per-AS best paths toward
// each announcement -- from a synthetic topology. Routing follows the
// standard valley-free model:
//
//   * an AS prefers routes learned from customers over peers over
//     providers, then shorter AS paths, then the lowest next-hop ASN;
//   * routes learned from a customer are exported to everyone;
//   * routes learned from a peer or provider are exported only to
//     customers.
//
// That yields the classic three-phase computation (e.g. Gill et al.):
// customer routes climb provider edges, peer routes take one lateral hop,
// then routes descend customer edges. Each phase is O(V+E), so a full
// propagation is linear -- cheap enough to run once per (origin,
// announcement class).
//
// Filtering: each AS has a FilterPolicy. ROV drops RPKI-invalid
// announcements from any neighbor (§2.3); customer/peer ingress filtering
// (MANRS Action 1, §2.4) drops announcements whose RPKI or IRR status is
// invalid when learned on the corresponding adjacency. A dropped
// announcement is neither installed nor re-exported by that AS.
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "astopo/graph.h"
#include "bgp/route.h"
#include "netbase/asn.h"

namespace manrs::sim {

/// Validity flags an announcement carries through the simulator. (The
/// simulator does not re-derive them; the caller classifies against its
/// VRP/IRR stores and passes the result in.)
///
/// `variant` models the well-known leakiness of manually maintained
/// prefix-list filters: invalid announcements are bucketed into
/// kFilterVariants classes (assigned by prefix hash), and an AS with
/// customer/peer strictness s drops only buckets < s. Strictness
/// kFilterVariants means "drops everything invalid"; ROV, which routers
/// apply uniformly, is modeled as all-or-nothing.
struct AnnouncementClass {
  bool rpki_invalid = false;
  bool irr_invalid = false;
  uint8_t variant = 0;  // meaningful only when some flag is set

  friend bool operator==(const AnnouncementClass&,
                         const AnnouncementClass&) = default;
};

inline constexpr uint8_t kFilterVariants = 4;

/// Deterministic variant bucket for a prefix.
uint8_t filter_variant(const net::Prefix& prefix);

/// Per-AS ingress filtering behaviour.
struct FilterPolicy {
  /// Full ROV deployment: drop RPKI-invalid routes from any neighbor.
  bool rov = false;
  /// MANRS Action 1 style filtering of customer announcements: drop
  /// customer-learned RPKI/IRR-invalid routes in variant buckets
  /// [0, customer_strictness). 0 = no filtering, kFilterVariants = strict.
  uint8_t customer_strictness = 0;
  /// Ingress filtering on peers (MANRS CDN Action 1 covers "peers and
  /// customers").
  uint8_t peer_strictness = 0;
};

/// How a route was learned at an AS.
enum class RouteSource : uint8_t {
  kNone = 0,
  kProvider = 1,
  kPeer = 2,
  kCustomer = 3,
  kOrigin = 4,
};

/// Result of one propagation: per-AS state indexed by dense AS id.
struct PropagationResult {
  static constexpr int32_t kNoRoute = -1;

  std::vector<RouteSource> source;  // how each AS learned the route
  std::vector<int32_t> next_hop;    // dense id of the neighbor toward origin
  std::vector<uint16_t> distance;   // AS-path length in hops from origin

  bool reached(int32_t id) const {
    return source[static_cast<size_t>(id)] != RouteSource::kNone;
  }
};

/// Maps ASNs to dense ids [0, n) and back.
class AsIndexer {
 public:
  explicit AsIndexer(const astopo::AsGraph& graph);

  int32_t id_of(net::Asn asn) const {
    auto it = ids_.find(asn.value());
    return it == ids_.end() ? -1 : it->second;
  }
  net::Asn asn_of(int32_t id) const { return asns_[static_cast<size_t>(id)]; }
  size_t size() const { return asns_.size(); }
  const std::vector<net::Asn>& asns() const { return asns_; }

 private:
  std::unordered_map<uint32_t, int32_t> ids_;
  std::vector<net::Asn> asns_;
};

class PropagationSim {
 public:
  explicit PropagationSim(const astopo::AsGraph& graph);

  const AsIndexer& indexer() const { return indexer_; }

  /// Set the filtering policy of one AS (default: no filtering).
  void set_policy(net::Asn asn, const FilterPolicy& policy);
  const FilterPolicy& policy(net::Asn asn) const;

  /// Propagate an announcement originated by `origin` with the given
  /// validity class. Returns per-AS routing state.
  PropagationResult propagate(net::Asn origin,
                              const AnnouncementClass& cls) const;

  /// Reconstruct the AS path from `vantage` to the origin (inclusive of
  /// both): [vantage, ..., origin]. Empty when the vantage has no route.
  bgp::AsPath path_from(const PropagationResult& result,
                        net::Asn vantage) const;

 private:
  // Dense-id adjacency. providers_of_[u] lists ids that are providers of
  // u, etc.
  std::vector<std::vector<int32_t>> providers_of_;
  std::vector<std::vector<int32_t>> customers_of_;
  std::vector<std::vector<int32_t>> peers_of_;
  std::vector<FilterPolicy> policies_;
  AsIndexer indexer_;
};

}  // namespace manrs::sim
