// BGP route propagation over an AS topology with Gao-Rexford policies.
//
// The paper observes the real Internet through RouteViews/RIS; this
// simulator produces the equivalent observable -- per-AS best paths toward
// each announcement -- from a synthetic topology. Routing follows the
// standard valley-free model:
//
//   * an AS prefers routes learned from customers over peers over
//     providers, then shorter AS paths, then the lowest next-hop ASN;
//   * routes learned from a customer are exported to everyone;
//   * routes learned from a peer or provider are exported only to
//     customers.
//
// That yields the classic three-phase computation (e.g. Gill et al.):
// customer routes climb provider edges, peer routes take one lateral hop,
// then routes descend customer edges. Each phase is O(V+E), so a full
// propagation is linear -- cheap enough to run once per (origin,
// announcement class).
//
// Filtering: each AS has a FilterPolicy. ROV drops RPKI-invalid
// announcements from any neighbor (§2.3); customer/peer ingress filtering
// (MANRS Action 1, §2.4) drops announcements whose RPKI or IRR status is
// invalid when learned on the corresponding adjacency. A dropped
// announcement is neither installed nor re-exported by that AS.
//
// Engine layout (see docs/performance.md, "The propagation engine"):
//   * adjacency is CSR (flat offset/edge arrays), with dense ids assigned
//     in ASN-ascending order so every tie-break compares ids directly;
//   * per-(policy, adjacency, class) drop decisions are precomputed into
//     packed bitsets, turning the BFS inner-loop filter check into one
//     bit test;
//   * per-call scratch lives in a reusable, epoch-stamped
//     PropagationWorkspace, so steady-state propagation allocates almost
//     nothing beyond its output;
//   * the dominant downhill phase is branchless: per-AS packed order
//     keys folded with conditional moves instead of an unpredictable
//     install-or-skip branch per edge (see propagate_id);
//   * propagate_cached() memoizes results by (origin, effective drop
//     signature), letting the collector and hegemony stages share one
//     propagation per group -- and letting classes no policy tells apart
//     collapse onto a single cache entry;
//   * propagate_batch() runs up to kMaxBatchLanes origins per sweep over
//     a struct-of-arrays lane block (one packed order key per (AS, lane),
//     contiguous per AS), so one pass over the CSR adjacency serves the
//     whole batch and the per-edge fold vectorizes across lanes; the
//     batched propagate_cached() overload groups pending (origin,
//     signature) misses into such sweeps;
//   * extract_paths() reconstructs per-vantage AS paths into a reusable
//     PathArena with a per-AS suffix memo, returning non-owning PathViews
//     instead of one heap AsPath per vantage.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "astopo/graph.h"
#include "bgp/route.h"
#include "netbase/asn.h"

namespace manrs::sim {

/// Validity flags an announcement carries through the simulator. (The
/// simulator does not re-derive them; the caller classifies against its
/// VRP/IRR stores and passes the result in.)
///
/// `variant` models the well-known leakiness of manually maintained
/// prefix-list filters: invalid announcements are bucketed into
/// kFilterVariants classes (assigned by prefix hash), and an AS with
/// customer/peer strictness s drops only buckets < s. Strictness
/// kFilterVariants means "drops everything invalid"; ROV, which routers
/// apply uniformly, is modeled as all-or-nothing.
struct AnnouncementClass {
  bool rpki_invalid = false;
  bool irr_invalid = false;
  uint8_t variant = 0;  // meaningful only when some flag is set

  friend bool operator==(const AnnouncementClass&,
                         const AnnouncementClass&) = default;
};

inline constexpr uint8_t kFilterVariants = 4;

/// Deterministic variant bucket for a prefix: FNV-1a over the prefix's
/// wire bytes (family, length, 16 address bytes big-endian), mod
/// kFilterVariants. Never std::hash -- the bucket feeds propagation and
/// therefore output bytes, which must not depend on the standard library
/// (util/det_hash.h).
uint8_t filter_variant(const net::Prefix& prefix);

/// Per-AS ingress filtering behaviour.
struct FilterPolicy {
  /// Full ROV deployment: drop RPKI-invalid routes from any neighbor.
  bool rov = false;
  /// MANRS Action 1 style filtering of customer announcements: drop
  /// customer-learned RPKI/IRR-invalid routes in variant buckets
  /// [0, customer_strictness). 0 = no filtering, kFilterVariants = strict.
  uint8_t customer_strictness = 0;
  /// Ingress filtering on peers (MANRS CDN Action 1 covers "peers and
  /// customers").
  uint8_t peer_strictness = 0;
};

/// How a route was learned at an AS.
enum class RouteSource : uint8_t {
  kNone = 0,
  kProvider = 1,
  kPeer = 2,
  kCustomer = 3,
  kOrigin = 4,
};

/// Result of one propagation: per-AS state indexed by dense AS id.
struct PropagationResult {
  static constexpr int32_t kNoRoute = -1;

  std::vector<RouteSource> source;  // how each AS learned the route
  std::vector<int32_t> next_hop;    // dense id of the neighbor toward origin
  std::vector<uint16_t> distance;   // AS-path length in hops from origin

  bool reached(int32_t id) const {
    return source[static_cast<size_t>(id)] != RouteSource::kNone;
  }
};

/// Shared, immutable propagation result (the propagation cache's unit).
using PropagationResultPtr = std::shared_ptr<const PropagationResult>;

/// Outcome of path reconstruction (path_from). kNoRoute is the normal
/// "vantage never learned the route" case; kBrokenChain means the
/// next_hop chain itself is corrupt (a cycle, an out-of-range id, or a
/// hop with no installed route) -- possible only with a damaged or
/// mismatched PropagationResult, never with one this engine produced.
enum class PathStatus : uint8_t {
  kOk = 0,
  kNoRoute = 1,
  kBrokenChain = 2,
};

/// Maps ASNs to dense ids [0, n) and back. Ids are assigned in
/// ASN-ascending order, so `id_a < id_b` iff `asn_of(id_a) < asn_of(id_b)`
/// -- the propagation tie-breaks rely on this to compare ids directly.
class AsIndexer {
 public:
  explicit AsIndexer(const astopo::AsGraph& graph);

  int32_t id_of(net::Asn asn) const {
    auto it = ids_.find(asn.value());
    return it == ids_.end() ? -1 : it->second;
  }
  net::Asn asn_of(int32_t id) const { return asns_[static_cast<size_t>(id)]; }
  size_t size() const { return asns_.size(); }
  const std::vector<net::Asn>& asns() const { return asns_; }

 private:
  std::unordered_map<uint32_t, int32_t> ids_;
  std::vector<net::Asn> asns_;
};

/// Reusable per-call scratch for propagate(). Reset is O(1): per-AS state
/// is valid only when its stamp matches the current epoch, so a new call
/// bumps the epoch instead of clearing n-sized arrays. One workspace
/// serves any number of sequential calls (grow-only across simulators of
/// different sizes); it must not be shared between concurrent calls --
/// parallel callers keep one per worker thread.
struct PropagationWorkspace {
  struct PeerOffer {
    int32_t to;
    int32_t from;
    uint16_t dist;
  };

  /// Per-AS state, packed into one 8-byte slot. The BFS inner loops are
  /// bound by random reads of neighbor state; keeping stamp, next hop,
  /// distance, and source together means each neighbor visit touches
  /// exactly one cache line instead of one per parallel array.
  struct NodeState {
    int32_t next_hop;
    uint16_t distance;
    RouteSource source;
    uint8_t stamp;  // valid iff == workspace epoch
  };
  static_assert(sizeof(NodeState) == 8, "NodeState must stay one 8-byte slot");

  uint8_t epoch = 0;
  std::vector<NodeState> node;
  std::vector<int32_t> touched;  // ids stamped this epoch, in set order
  std::vector<int32_t> frontier;
  std::vector<int32_t> next;
  std::vector<PeerOffer> offers;
  std::vector<std::vector<int32_t>> buckets;  // phase-3 seeds by distance
  // Phase-3 scratch: the branchless descent keeps one packed order key
  // per AS (smaller = better route) and a change bitmap per level; see
  // propagate_id for the key encoding.
  std::vector<uint64_t> key;
  std::vector<uint64_t> changed;  // 1 bit per AS; all-zero between calls

  /// Start a new call over n ASes: bump the epoch (full re-stamp only on
  /// first use, growth, or every 255th call when the 8-bit epoch wraps)
  /// and clear the small lists.
  void begin(size_t n) {
    if (node.size() < n) {
      node.assign(n, NodeState{});
      key.resize(n);
      changed.assign((n + 63) / 64, 0);
      epoch = 0;
    }
    if (++epoch == 0) {  // uint8 wrap: invalidate all stamps
      for (NodeState& s : node) s.stamp = 0;
      epoch = 1;
    }
    touched.clear();
    frontier.clear();
    next.clear();
    offers.clear();
  }

  bool stamped(int32_t v) const {
    return node[static_cast<size_t>(v)].stamp == epoch;
  }

  /// Install a route at v and record it in the touched list.
  void install(int32_t v, RouteSource src, int32_t hop, uint16_t dist) {
    NodeState& s = node[static_cast<size_t>(v)];
    s.stamp = epoch;
    s.source = src;
    s.next_hop = hop;
    s.distance = dist;
    touched.push_back(v);
  }
};

/// Propagation-cache counters (cumulative over the simulator's lifetime;
/// entries/bytes reflect the current contents).
struct PropagationCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;  // computed fresh (inserted unless over capacity)
  uint64_t invalidated = 0;  // entries dropped by apply_delta()
  size_t entries = 0;
  size_t bytes = 0;
};

/// One day's topology/policy change set for apply_delta(). The AS universe
/// is fixed at construction (the indexer never changes); deltas add edges
/// among existing ASes and replace per-AS policies wholesale.
struct SimDelta {
  struct PolicyChange {
    net::Asn asn;
    FilterPolicy policy;
  };
  /// For kProviderCustomer edges `a` is the provider and `b` the customer;
  /// for kPeerPeer the order is irrelevant. Duplicate / already-present
  /// edges are ignored.
  struct EdgeAdd {
    net::Asn a;
    net::Asn b;
    astopo::Relationship rel = astopo::Relationship::kPeerPeer;
  };

  std::vector<PolicyChange> policies;
  std::vector<EdgeAdd> edges;

  bool empty() const { return policies.empty() && edges.empty(); }
};

/// Cache-migration accounting from one apply_delta() call.
struct SimDeltaStats {
  size_t entries_before = 0;       // cache entries when the delta arrived
  size_t entries_invalidated = 0;  // dropped (inputs touched by the delta)
  size_t entries_kept = 0;         // survived, rekeyed where signatures moved
};

/// One origin x validity-class request for the batched engine. A batch of
/// these is the unit RouteCollector::collect and IhrSnapshotBuilder::build
/// hand to propagate_cached().
struct PropagationRequest {
  net::Asn origin;
  AnnouncementClass cls;
};

/// Hard ceiling on lanes per batched sweep: lane membership (frontier,
/// drop filters, change tracking) is one 64-bit mask per AS.
inline constexpr size_t kMaxBatchLanes = 64;

/// Lane width used when chunking requests into sweeps: MANRS_BATCH_WIDTH
/// (default 64), clamped to [1, kMaxBatchLanes].
size_t batch_width();
/// Override the width (clamped to [1, kMaxBatchLanes]); 0 re-reads the
/// environment. Test hook, like util::set_grain.
void set_batch_width(size_t width);

/// Reusable scratch for one batched sweep (propagate_batch): per-AS lane
/// state as struct-of-arrays. The packed 8-byte order keys of all lanes of
/// one AS are contiguous (`key[v * lanes + l]`), so the descent's
/// min-fold runs over a dense block per edge visit; frontier membership,
/// drop filters, and change tracking are one 64-bit lane mask per AS.
/// begin() must start every sweep -- the arrays carry the previous
/// sweep's keys otherwise -- and a workspace must not be shared between
/// concurrent sweeps; parallel callers keep one per worker thread.
struct BatchWorkspace {
  size_t n = 0;      // ASes (dense-id space)
  size_t lanes = 0;  // active lanes this sweep, <= kMaxBatchLanes

  std::vector<uint64_t> key;  // n * lanes packed order keys, SoA per AS
  // Per-AS lane masks.
  std::vector<uint64_t> cust_mask;   // lanes holding a customer/origin route
  std::vector<uint64_t> reach_mask;  // lanes routed after phases 1-2
  std::vector<uint64_t> fmask;       // current BFS-level frontier lanes
  std::vector<uint64_t> cmask;       // lanes changed within a level
  std::vector<uint64_t> drop_cust;   // lanes this AS filters per adjacency
  std::vector<uint64_t> drop_peer;
  std::vector<uint64_t> drop_prov;
  std::vector<int32_t> frontier;
  std::vector<int32_t> next;
  std::vector<int32_t> touched;  // ids routed in phases 1-2, in set order

  /// Start a sweep over `n_ases` ASes and `lane_count` lanes: size and
  /// clear every array (keys to the unseen sentinel).
  void begin(size_t n_ases, size_t lane_count);

  /// Seed lane `lane`'s origin at dense id `id`: pins the origin key and
  /// enters the id into the phase-1 frontier. Call after begin().
  void seed_origin(int32_t id, size_t lane);
};

/// A non-owning view of one reconstructed AS path [vantage, ..., origin].
/// The hops live in the PathArena the view was extracted into; views stay
/// valid until that arena's next extract_paths() call (or destruction).
struct PathView {
  const net::Asn* hops = nullptr;
  uint32_t len = 0;

  bool empty() const { return len == 0; }
  size_t size() const { return len; }
  const net::Asn* begin() const { return hops; }
  const net::Asn* end() const { return hops + len; }
  net::Asn operator[](size_t i) const { return hops[i]; }
  /// Materialize an owned path (one exact-size allocation).
  bgp::AsPath to_path() const {
    return bgp::AsPath(std::vector<net::Asn>(hops, hops + len));
  }
};

/// Cumulative process-wide counters for arena path extraction. shared_hops
/// counts hops served from a memoized shared suffix instead of a fresh
/// next_hop-chain walk.
struct PathArenaStats {
  uint64_t paths = 0;
  uint64_t hops = 0;
  uint64_t shared_hops = 0;
};
PathArenaStats path_arena_stats();

/// Bump storage for extract_paths(): all hops of one result's paths in a
/// single grow-only vector, plus an epoch-stamped per-AS memo so vantages
/// deep in the same customer cone share their common suffix ([AS, ...,
/// origin] is a function of the AS alone within one result) by memcpy
/// instead of re-walking the chain. Reused across calls with O(1) reset;
/// one arena per worker thread, like PropagationWorkspace.
class PathArena {
 public:
  PathArena() = default;

 private:
  friend class PropagationSim;
  struct Memo {
    uint32_t offset = 0;
    uint32_t len = 0;
    uint32_t stamp = 0;  // valid iff == epoch
  };
  std::vector<net::Asn> hops_;
  std::vector<Memo> memo_;
  std::vector<int32_t> scratch_;  // ids of the walked (unmemoized) prefix
  uint32_t epoch_ = 0;
};

class PropagationSim {
 public:
  explicit PropagationSim(const astopo::AsGraph& graph);
  ~PropagationSim();
  PropagationSim(PropagationSim&&) noexcept;
  PropagationSim& operator=(PropagationSim&&) noexcept;

  const AsIndexer& indexer() const { return indexer_; }

  /// Set the filtering policy of one AS (default: no filtering).
  /// Invalidates the precomputed drop masks and the propagation cache;
  /// not safe concurrently with propagate() calls.
  void set_policy(net::Asn asn, const FilterPolicy& policy);
  const FilterPolicy& policy(net::Asn asn) const;

  /// Apply one day's policy/edge delta in place with *selective* cache
  /// invalidation (set_policy clears the cache wholesale). Not safe
  /// concurrently with propagate() calls. Two-step migration under the
  /// cache lock, sound because a cached result is a pure function of
  /// (adjacency, origin, the 3 drop-mask bitsets of its signature):
  ///
  ///   1. Rekey by mask bytes: entries whose old signature's mask block is
  ///      byte-identical to a rebuilt signature's block keep their result
  ///      under the new signature; entries whose block disappeared (some
  ///      policy change touched a mask their class uses) are dropped.
  ///   2. Edge candidate test: for each surviving entry and each new edge,
  ///      compute the packed order key the edge would offer at both
  ///      endpoints (export gating + receiver drop masks included). If no
  ///      offer beats the endpoint's current key, the old result is still
  ///      a fixpoint of the grown graph -- and the minimal one, so it is
  ///      exactly what a cold propagation would return. Otherwise drop.
  ///
  /// The per-day cold-rebuild oracle (DeltaOracle tests, SnapshotSeries
  /// verify mode) pins that this is never too narrow.
  SimDeltaStats apply_delta(const SimDelta& delta);

  /// Propagate an announcement originated by `origin` with the given
  /// validity class. Returns per-AS routing state. Always computes (no
  /// cache); the workspace overload reuses caller scratch.
  PropagationResult propagate(net::Asn origin,
                              const AnnouncementClass& cls) const;
  PropagationResult propagate(net::Asn origin, const AnnouncementClass& cls,
                              PropagationWorkspace& workspace) const;

  /// Memoized propagation, shared across pipeline stages: results are
  /// keyed by (origin, effective drop signature), so classes that no
  /// policy distinguishes -- all valid classes, and invalid variants with
  /// identical drop masks -- collapse onto one cached propagation. The
  /// returned pointer stays valid after clear_cache(). Safe to call
  /// concurrently. When the cache is disabled this computes fresh.
  PropagationResultPtr propagate_cached(net::Asn origin,
                                        const AnnouncementClass& cls) const;

  /// Batch-aware cached propagation: resolves every request against the
  /// memo, groups first-seen misses by (origin, signature), runs them
  /// through the lane engine batch_width() origins per sweep (sweeps fan
  /// out over the worker pool), installs the results, and returns one
  /// pointer per request (slot i answers requests[i]). Per-lane results
  /// are byte-identical to the single-origin engine at any width. Unknown
  /// origins yield the all-none result, like the single-origin overload.
  std::vector<PropagationResultPtr> propagate_cached(
      const std::vector<PropagationRequest>& requests) const;

  /// Uncached batched propagation (the raw lane engine): slot i answers
  /// requests[i], chunked into sweeps of batch_width() lanes. The
  /// workspace overload reuses caller scratch.
  std::vector<PropagationResult> propagate_batch(
      const std::vector<PropagationRequest>& requests) const;
  std::vector<PropagationResult> propagate_batch(
      const std::vector<PropagationRequest>& requests,
      BatchWorkspace& workspace) const;

  /// Cache controls. Capacity defaults to MANRS_PROP_CACHE_MB megabytes
  /// (2048 when unset); at capacity, new results are returned uncached.
  /// Disabling also clears. Cached bytes are pure function values, so
  /// outputs are byte-identical with the cache on or off.
  void set_cache_enabled(bool enabled);
  bool cache_enabled() const;
  void clear_cache();
  PropagationCacheStats cache_stats() const;

  /// Reconstruct the AS path from `vantage` to the origin (inclusive of
  /// both): [vantage, ..., origin]. Empty when the vantage has no route.
  /// The status overload distinguishes "no route" from a corrupt
  /// next_hop chain (see PathStatus); both return an empty path.
  bgp::AsPath path_from(const PropagationResult& result,
                        net::Asn vantage) const;
  bgp::AsPath path_from(const PropagationResult& result, net::Asn vantage,
                        PathStatus* status) const;

  /// Reconstruct the AS path of every vantage in one pass: slot i is
  /// vantages[i]'s path as a view into `arena` (empty when the vantage
  /// has no route or the chain is corrupt, exactly like path_from).
  /// Vantages whose suffix was already walked for this result share its
  /// hops through the arena memo. Views from previous extract_paths calls
  /// on the same arena are invalidated.
  std::vector<PathView> extract_paths(const PropagationResult& result,
                                      const std::vector<net::Asn>& vantages,
                                      PathArena& arena) const;

 private:
  /// Flat compressed-sparse-row adjacency: neighbors of u are
  /// edges[offsets[u] .. offsets[u+1]), ascending by id (== by ASN).
  struct Csr {
    std::vector<uint32_t> offsets;
    std::vector<int32_t> edges;

    const int32_t* begin(int32_t u) const {
      return edges.data() + offsets[static_cast<size_t>(u)];
    }
    const int32_t* end(int32_t u) const {
      return edges.data() + offsets[static_cast<size_t>(u) + 1];
    }
  };

  // Mutable engine state (lazily built drop masks, the propagation
  // cache) lives behind a pointer so the simulator stays movable; the
  // definition is in propagation.cpp.
  struct State;

  void ensure_masks() const;
  /// Recompute descent_order_/descent_is_dag_ from the current CSRs
  /// (construction and after apply_delta() edge growth).
  void rebuild_descent_order();
  size_t class_index(const AnnouncementClass& cls) const;
  const uint64_t* mask_for(size_t cls_index, size_t adjacency) const;
  PropagationResult propagate_id(int32_t origin_id,
                                 const AnnouncementClass& cls,
                                 PropagationWorkspace& ws) const;
  /// One batched sweep: lane l propagates origin_ids[l] under class index
  /// cls_indices[l]; results[l] receives lane l's dense result. Callers
  /// guarantee lanes <= kMaxBatchLanes, valid ids, and ensure_masks().
  void propagate_lanes(const int32_t* origin_ids, const size_t* cls_indices,
                       size_t lanes, BatchWorkspace& ws,
                       PropagationResult* const* results) const;

  AsIndexer indexer_;
  Csr providers_;  // providers_.edges of u: ids that are providers of u
  Csr customers_;
  Csr peers_;
  // Provider-before-customer topological order of the p2c hierarchy,
  // computed once at construction: the lane engine's descent pulls each
  // AS's provider candidates in this order, so one pass over the order
  // crosses every p2c edge exactly once. If the graph has a p2c cycle
  // (never for generated topologies), the order is completed with the
  // leftover ids and the descent iterates to the fixpoint instead.
  std::vector<int32_t> descent_order_;
  bool descent_is_dag_ = true;
  std::vector<FilterPolicy> policies_;
  std::unique_ptr<State> state_;
};

}  // namespace manrs::sim
