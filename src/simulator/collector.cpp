#include "simulator/collector.h"

#include <algorithm>
#include <map>

#include "util/parallel.h"

namespace manrs::sim {

RouteCollector::RouteCollector(const PropagationSim& sim,
                               std::vector<net::Asn> peer_ases,
                               std::string name)
    : sim_(sim), peer_ases_(std::move(peer_ases)), name_(std::move(name)) {}

std::vector<AnnouncementGroup> group_announcements(
    const std::vector<Announcement>& announcements) {
  // Key: (origin, rpki_invalid, irr_invalid, variant). std::map keeps
  // group order deterministic. Valid announcements all share variant 0 so
  // they collapse into one group per origin.
  std::map<std::tuple<uint32_t, bool, bool, uint8_t>, AnnouncementGroup>
      groups;
  for (const auto& a : announcements) {
    uint8_t variant =
        (a.cls.rpki_invalid || a.cls.irr_invalid) ? a.cls.variant : 0;
    auto key = std::make_tuple(a.origin.value(), a.cls.rpki_invalid,
                               a.cls.irr_invalid, variant);
    auto& group = groups[key];
    group.origin = a.origin;
    group.cls = a.cls;
    group.cls.variant = variant;
    group.prefixes.push_back(a.prefix);
  }
  std::vector<AnnouncementGroup> out;
  out.reserve(groups.size());
  for (auto& [_, group] : groups) out.push_back(std::move(group));
  return out;
}

bgp::Rib RouteCollector::collect(
    const std::vector<Announcement>& announcements) const {
  bgp::Rib rib;
  std::vector<uint32_t> peer_indices;
  peer_indices.reserve(peer_ases_.size());
  for (net::Asn peer : peer_ases_) peer_indices.push_back(rib.add_peer(peer));

  // Groups propagate independently over const simulator state: fan out,
  // collect each group's per-peer paths into its index slot, then merge
  // serially in group order so the RIB is identical to the serial build.
  const std::vector<AnnouncementGroup> groups =
      group_announcements(announcements);
  std::vector<std::vector<bgp::RibEntry>> group_entries(groups.size());
  util::parallel_for(groups.size(), [&](size_t g) {
    PropagationResult result = sim_.propagate(groups[g].origin, groups[g].cls);
    // Each peer's path is shared by every prefix in the group; peers with
    // no route are dropped here so the per-prefix merge never re-walks
    // them.
    std::vector<bgp::RibEntry> entries;
    entries.reserve(peer_ases_.size());
    for (size_t i = 0; i < peer_ases_.size(); ++i) {
      bgp::AsPath path = sim_.path_from(result, peer_ases_[i]);
      if (!path.empty()) {
        entries.push_back(bgp::RibEntry{peer_indices[i], std::move(path)});
      }
    }
    group_entries[g] = std::move(entries);
  });

  for (size_t g = 0; g < groups.size(); ++g) {
    for (const net::Prefix& prefix : groups[g].prefixes) {
      rib.insert_many(prefix, group_entries[g]);
    }
  }
  return rib;
}

}  // namespace manrs::sim
