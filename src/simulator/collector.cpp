#include "simulator/collector.h"

#include <algorithm>
#include <map>

#include "util/parallel.h"

namespace manrs::sim {

RouteCollector::RouteCollector(const PropagationSim& sim,
                               std::vector<net::Asn> peer_ases,
                               std::string name)
    : sim_(sim), peer_ases_(std::move(peer_ases)), name_(std::move(name)) {}

std::vector<AnnouncementGroup> group_announcements(
    const std::vector<Announcement>& announcements,
    std::vector<size_t>* group_of) {
  // Key: (origin, rpki_invalid, irr_invalid, variant). std::map keeps
  // group order deterministic. Valid announcements all share variant 0 so
  // they collapse into one group per origin.
  using Key = std::tuple<uint32_t, bool, bool, uint8_t>;
  auto key_of = [](const Announcement& a) {
    uint8_t variant =
        (a.cls.rpki_invalid || a.cls.irr_invalid) ? a.cls.variant : 0;
    return std::make_tuple(a.origin.value(), a.cls.rpki_invalid,
                           a.cls.irr_invalid, variant);
  };
  std::map<Key, AnnouncementGroup> groups;
  for (const auto& a : announcements) {
    auto key = key_of(a);
    auto& group = groups[key];
    group.origin = a.origin;
    group.cls = a.cls;
    group.cls.variant = std::get<3>(key);
    group.prefixes.push_back(a.prefix);
  }
  std::vector<AnnouncementGroup> out;
  out.reserve(groups.size());
  std::map<Key, size_t> order;
  for (auto& [key, group] : groups) {
    order.emplace(key, out.size());
    out.push_back(std::move(group));
  }
  if (group_of != nullptr) {
    group_of->clear();
    group_of->reserve(announcements.size());
    for (const auto& a : announcements) {
      group_of->push_back(order.at(key_of(a)));
    }
  }
  return out;
}

std::vector<std::vector<bgp::RibEntry>> RouteCollector::collect_group_entries(
    const std::vector<AnnouncementGroup>& groups) const {
  // One batched resolve for every group: cache misses run through the
  // lane engine batch_width() origins per sweep instead of one BFS per
  // group (slot g answers groups[g]).
  std::vector<PropagationRequest> requests;
  requests.reserve(groups.size());
  for (const AnnouncementGroup& group : groups) {
    requests.push_back(PropagationRequest{group.origin, group.cls});
  }
  const std::vector<PropagationResultPtr> results =
      sim_.propagate_cached(requests);

  // Path extraction fans out per group; each worker thread reuses one
  // arena, so vantages sharing a customer-cone suffix share its hops.
  std::vector<std::vector<bgp::RibEntry>> group_entries(groups.size());
  util::parallel_for(groups.size(), [&](size_t g) {
    thread_local PathArena arena;
    const std::vector<PathView> views =
        sim_.extract_paths(*results[g], peer_ases_, arena);
    // Each peer's path is shared by every prefix in the group; peers with
    // no route are dropped here so the per-prefix merge never re-walks
    // them.
    std::vector<bgp::RibEntry> entries;
    entries.reserve(peer_ases_.size());
    for (size_t i = 0; i < peer_ases_.size(); ++i) {
      if (!views[i].empty()) {
        entries.push_back(
            bgp::RibEntry{static_cast<uint32_t>(i), views[i].to_path()});
      }
    }
    group_entries[g] = std::move(entries);
  });
  return group_entries;
}

std::vector<bgp::RibRow> merge_group_entries(
    const std::vector<AnnouncementGroup>& groups,
    std::vector<std::vector<bgp::RibEntry>> group_entries) {
  // One task per announced (prefix, group). Sorting by (prefix, group)
  // puts every row's work in one contiguous run, in exactly the order
  // the serial build staged it: groups ascending, and duplicates of the
  // same pair are idempotent under replace-per-peer.
  struct Task {
    net::Prefix prefix;
    size_t group;
  };
  size_t total = 0;
  for (const auto& g : groups) total += g.prefixes.size();
  std::vector<Task> tasks;
  tasks.reserve(total);
  // Groups referenced by exactly one task never feed another row, so
  // their entries (and the AsPath heap blocks behind them) can be moved
  // into that row instead of deep-copied. Single-prefix groups dominate
  // invalid-announcement scenarios, so this trims most of the merge's
  // serial allocation fat.
  std::vector<uint32_t> group_refs(groups.size(), 0);
  for (size_t g = 0; g < groups.size(); ++g) {
    for (const net::Prefix& prefix : groups[g].prefixes) {
      tasks.push_back(Task{prefix, g});
      ++group_refs[g];
    }
  }
  std::sort(tasks.begin(), tasks.end(), [](const Task& a, const Task& b) {
    if (a.prefix != b.prefix) return a.prefix < b.prefix;
    return a.group < b.group;
  });

  // Row boundaries at each distinct prefix. A chunk of consecutive rows
  // is a prefix-range shard, so the grain-chunked parallel_for below IS
  // the sharded build -- and each row lands in its index slot, so the
  // result is identical at any thread count.
  std::vector<size_t> row_start;
  for (size_t t = 0; t < tasks.size(); ++t) {
    if (t == 0 || tasks[t].prefix != tasks[t - 1].prefix) {
      row_start.push_back(t);
    }
  }
  row_start.push_back(tasks.size());
  const size_t rows = row_start.size() - 1;

  std::vector<bgp::RibRow> out(rows);
  util::parallel_for(rows, [&](size_t r) {
    bgp::RibRow row;
    row.prefix = tasks[row_start[r]].prefix;
    for (size_t t = row_start[r]; t < row_start[r + 1]; ++t) {
      // A singleton group belongs to this task alone: no other row (on
      // any thread) reads that slot, so stealing its entries is
      // race-free and value-identical to the copy.
      std::vector<bgp::RibEntry>& src = group_entries[tasks[t].group];
      const bool sole_use = group_refs[tasks[t].group] == 1;
      if (sole_use && row.entries.empty()) {
        row.entries = std::move(src);
        continue;
      }
      for (bgp::RibEntry& e : src) {
        auto it = std::find_if(row.entries.begin(), row.entries.end(),
                               [&](const bgp::RibEntry& have) {
                                 return have.peer_index == e.peer_index;
                               });
        if (it == row.entries.end()) {
          if (sole_use) {
            row.entries.push_back(std::move(e));
          } else {
            row.entries.push_back(e);
          }
        } else if (sole_use) {
          it->path = std::move(e.path);
        } else {
          it->path = e.path;
        }
      }
    }
    out[r] = std::move(row);
  });
  // Prefixes every peer dropped produce no row: an empty row cannot
  // survive an MRT write/read round-trip anyway.
  std::erase_if(out,
                [](const bgp::RibRow& row) { return row.entries.empty(); });
  return out;
}

bgp::Rib RouteCollector::collect(
    const std::vector<Announcement>& announcements) const {
  bgp::Rib rib;
  for (net::Asn peer : peer_ases_) rib.add_peer(peer);
  const std::vector<AnnouncementGroup> groups =
      group_announcements(announcements);
  rib.adopt_rows(merge_group_entries(groups, collect_group_entries(groups)));
  return rib;
}

}  // namespace manrs::sim
