#include "simulator/propagation.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <mutex>

#if defined(__GNUC__) && defined(__x86_64__)
#include <immintrin.h>
#endif

#include "util/det_hash.h"
#include "util/parallel.h"
#include "util/strings.h"

namespace manrs::sim {

AsIndexer::AsIndexer(const astopo::AsGraph& graph) {
  // all_asns() is ascending, so dense ids are ASN-ascending: comparing
  // ids IS comparing ASNs (the engine's tie-breaks depend on this).
  asns_ = graph.all_asns();
  ids_.reserve(asns_.size());
  for (size_t i = 0; i < asns_.size(); ++i) {
    ids_.emplace(asns_[i].value(), static_cast<int32_t>(i));
  }
}

uint8_t filter_variant(const net::Prefix& prefix) {
  // FNV-1a over the prefix's wire bytes. std::hash would make the bucket
  // -- and through it scenario and dataset bytes -- depend on the
  // standard library in use.
  uint64_t h = util::kFnv1aOffset;
  h = util::fnv1a_byte(h, static_cast<uint8_t>(prefix.family()));
  h = util::fnv1a_byte(h, static_cast<uint8_t>(prefix.length()));
  h = util::fnv1a_u64(h, prefix.address().hi());
  h = util::fnv1a_u64(h, prefix.address().lo());
  return static_cast<uint8_t>(h % kFilterVariants);
}

namespace {

/// Reference drop rule: would `receiver` drop this announcement when
/// learning it over the given adjacency? The packed drop masks are built
/// from this; the BFS itself only ever does bit tests.
bool drops(const FilterPolicy& receiver, RouteSource adjacency,
           const AnnouncementClass& cls) {
  if (receiver.rov && cls.rpki_invalid) return true;
  bool invalid = cls.rpki_invalid || cls.irr_invalid;
  if (!invalid) return false;
  if (adjacency == RouteSource::kCustomer &&
      cls.variant < receiver.customer_strictness) {
    return true;
  }
  if (adjacency == RouteSource::kPeer &&
      cls.variant < receiver.peer_strictness) {
    return true;
  }
  return false;
}

inline bool test_bit(const uint64_t* mask, int32_t v) {
  size_t i = static_cast<size_t>(v);
  return ((mask[i >> 6] >> (i & 63)) & 1) != 0;
}

/// Approximate heap footprint of one cached PropagationResult.
size_t cache_entry_bytes(size_t n) {
  return n * (sizeof(RouteSource) + sizeof(int32_t) + sizeof(uint16_t)) + 168;
}

size_t cache_capacity_from_env() {
  constexpr size_t kDefaultMb = 2048;
  const char* env = std::getenv("MANRS_PROP_CACHE_MB");
  size_t mb = kDefaultMb;
  if (env != nullptr && *env != '\0') {
    if (auto parsed = util::parse_uint<uint64_t>(env)) {
      mb = static_cast<size_t>(*parsed);
    }
  }
  return mb * 1024 * 1024;
}

// Adjacency indices into the drop-mask table.
constexpr size_t kDropCustomer = 0;
constexpr size_t kDropPeer = 1;
constexpr size_t kDropProvider = 2;

// ---- batched lane engine ---------------------------------------------------
// Each (AS, lane) carries one packed order key, smaller = better:
//
//     [63:56] priority   [55:32] distance   [31:0] next-hop id
//
// with priority 0 = origin, 1 = customer, 2 = peer, 3 = provider. Unlike
// the single-origin phase 3 (which pins phase-1/2 seeds at key 0), the
// priority field makes the phase interactions fall out of one min-fold:
// a provider candidate can never displace a customer/peer/origin key, and
// a peer candidate can never displace a customer key. Unseen is the max
// *signed* 64-bit value so the fold's compare is sign-agnostic (every
// valid key has priority <= 3, well below 2^59) and the per-lane loop
// auto-vectorizes with either signed or unsigned compares.
constexpr uint64_t kLaneUnseen = 0x7fffffffffffffffull;
constexpr uint64_t kLaneCustomerPrio = 1ull << 56;
constexpr uint64_t kLanePeerPrio = 2ull << 56;
constexpr uint64_t kLaneProviderPrio = 3ull << 56;
constexpr uint64_t kLaneDistMask = 0xffffffull;

/// The all-none result of an unknown origin (matches propagate_id's
/// origin_id < 0 branch byte for byte).
PropagationResult unreached_result(size_t n) {
  PropagationResult result;
  result.source.assign(n, RouteSource::kNone);
  result.next_hop.assign(n, PropagationResult::kNoRoute);
  result.distance.assign(n, std::numeric_limits<uint16_t>::max());
  return result;
}

std::atomic<size_t> g_batch_width{0};  // 0 = unset; next read consults env

size_t batch_width_from_env() {
  const char* env = std::getenv("MANRS_BATCH_WIDTH");
  size_t width = kMaxBatchLanes;
  if (env != nullptr && *env != '\0') {
    if (auto parsed = util::parse_uint<uint64_t>(env); parsed && *parsed > 0) {
      width = static_cast<size_t>(*parsed);
    }
  }
  return std::min(std::max<size_t>(width, 1), kMaxBatchLanes);
}

// Arena path-extraction counters (see PathArenaStats).
std::atomic<uint64_t> g_arena_paths{0};
std::atomic<uint64_t> g_arena_hops{0};
std::atomic<uint64_t> g_arena_shared_hops{0};

}  // namespace

size_t batch_width() {
  size_t width = g_batch_width.load(std::memory_order_relaxed);
  if (width == 0) {
    width = batch_width_from_env();
    g_batch_width.store(width, std::memory_order_relaxed);
  }
  return width;
}

void set_batch_width(size_t width) {
  if (width == 0) {
    g_batch_width.store(0, std::memory_order_relaxed);
    return;
  }
  g_batch_width.store(std::min(std::max<size_t>(width, 1), kMaxBatchLanes),
                      std::memory_order_relaxed);
}

PathArenaStats path_arena_stats() {
  PathArenaStats stats;
  stats.paths = g_arena_paths.load(std::memory_order_relaxed);
  stats.hops = g_arena_hops.load(std::memory_order_relaxed);
  stats.shared_hops = g_arena_shared_hops.load(std::memory_order_relaxed);
  return stats;
}

void BatchWorkspace::begin(size_t n_ases, size_t lane_count) {
  n = n_ases;
  lanes = lane_count;
  key.assign(n * lanes, kLaneUnseen);
  cust_mask.assign(n, 0);
  reach_mask.assign(n, 0);
  fmask.assign(n, 0);
  cmask.assign(n, 0);
  drop_cust.assign(n, 0);
  drop_peer.assign(n, 0);
  drop_prov.assign(n, 0);
  frontier.clear();
  next.clear();
  touched.clear();
}

void BatchWorkspace::seed_origin(int32_t id, size_t lane) {
  const size_t v = static_cast<size_t>(id);
  key[v * lanes + lane] = 0;  // priority 0, distance 0: never displaced
  const uint64_t bit = 1ull << lane;
  if (fmask[v] == 0) frontier.push_back(id);
  fmask[v] |= bit;
  if (reach_mask[v] == 0) touched.push_back(id);
  reach_mask[v] |= bit;
  cust_mask[v] |= bit;
}

// Mutable engine state: the lazily built per-class drop masks and the
// cross-stage propagation cache. Held by pointer so PropagationSim stays
// movable despite the mutexes/atomics.
struct PropagationSim::State {
  // Drop masks: for each (class, adjacency), one bit per AS ("this AS
  // drops this class on this adjacency"). Built lazily under mask_mutex
  // on first propagate after a policy change; masks_ready publishes.
  std::mutex mask_mutex;
  std::atomic<bool> masks_ready{false};
  size_t words = 0;            // 64-bit words per bitset
  uint16_t variant_slots = 1;  // max strictness + 1; variants clamp here
  std::vector<uint64_t> drop_masks;
  // Effective drop signature per class: classes with identical masks
  // share a signature, and with it a propagation cache slot. Signature 0
  // is the all-zero (nothing drops) signature of the valid class.
  std::vector<uint16_t> sig_of_class;
  // Representative class per signature (sig_reps[s]'s mask block IS
  // signature s's block). apply_delta() rekeys surviving cache entries by
  // comparing old blocks against these.
  std::vector<size_t> sig_reps;

  // Memoized results keyed by (origin_id << 16) | signature.
  std::mutex cache_mutex;
  std::unordered_map<uint64_t, PropagationResultPtr> cache;
  size_t cache_bytes = 0;
  size_t cache_capacity = cache_capacity_from_env();
  std::atomic<bool> cache_enabled{true};
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> invalidated{0};  // dropped by apply_delta migrations
};

PropagationSim::PropagationSim(const astopo::AsGraph& graph)
    : indexer_(graph), state_(std::make_unique<State>()) {
  const size_t n = indexer_.size();
  policies_.resize(n);

  // CSR adjacency, built in one counting pass + one fill pass per role.
  // graph neighbor lists hold ASNs; ids are ASN-ascending, so sorting the
  // mapped ids reproduces the deterministic ASN-ascending neighbor order.
  auto build = [&](Csr& csr, auto&& neighbors_of) {
    csr.offsets.assign(n + 1, 0);
    for (size_t i = 0; i < n; ++i) {
      csr.offsets[i + 1] =
          csr.offsets[i] +
          static_cast<uint32_t>(
              neighbors_of(indexer_.asn_of(static_cast<int32_t>(i))).size());
    }
    csr.edges.resize(csr.offsets[n]);
    for (size_t i = 0; i < n; ++i) {
      int32_t* out = csr.edges.data() + csr.offsets[i];
      for (net::Asn neighbor :
           neighbors_of(indexer_.asn_of(static_cast<int32_t>(i)))) {
        *out++ = indexer_.id_of(neighbor);
      }
      std::sort(csr.edges.data() + csr.offsets[i],
                csr.edges.data() + csr.offsets[i + 1]);
    }
  };
  build(providers_, [&](net::Asn a) -> const std::vector<net::Asn>& {
    return graph.providers(a);
  });
  build(customers_, [&](net::Asn a) -> const std::vector<net::Asn>& {
    return graph.customers(a);
  });
  build(peers_, [&](net::Asn a) -> const std::vector<net::Asn>& {
    return graph.peers(a);
  });

  rebuild_descent_order();
}

// Provider-before-customer topological order (Kahn over the p2c DAG),
// seeded in ascending id order so the order is deterministic. Re-run by
// apply_delta() after edge growth.
void PropagationSim::rebuild_descent_order() {
  const size_t n = indexer_.size();
  descent_order_.clear();
  descent_order_.reserve(n);
  std::vector<uint32_t> pending(n);
  for (size_t i = 0; i < n; ++i) {
    pending[i] = providers_.offsets[i + 1] - providers_.offsets[i];
    if (pending[i] == 0) descent_order_.push_back(static_cast<int32_t>(i));
  }
  for (size_t head = 0; head < descent_order_.size(); ++head) {
    const int32_t u = descent_order_[head];
    const int32_t* e = customers_.begin(u);
    const int32_t* const e_end = customers_.end(u);
    for (; e != e_end; ++e) {
      if (--pending[static_cast<size_t>(*e)] == 0) descent_order_.push_back(*e);
    }
  }
  descent_is_dag_ = descent_order_.size() == n;
  if (!descent_is_dag_) {
    for (size_t i = 0; i < n; ++i) {
      if (pending[i] != 0) descent_order_.push_back(static_cast<int32_t>(i));
    }
  }
}

PropagationSim::~PropagationSim() = default;
PropagationSim::PropagationSim(PropagationSim&&) noexcept = default;
PropagationSim& PropagationSim::operator=(PropagationSim&&) noexcept = default;

void PropagationSim::set_policy(net::Asn asn, const FilterPolicy& policy) {
  int32_t id = indexer_.id_of(asn);
  if (id < 0) return;
  policies_[static_cast<size_t>(id)] = policy;
  state_->masks_ready.store(false, std::memory_order_release);
  clear_cache();
}

const FilterPolicy& PropagationSim::policy(net::Asn asn) const {
  static const FilterPolicy kDefault;
  int32_t id = indexer_.id_of(asn);
  return id >= 0 ? policies_[static_cast<size_t>(id)] : kDefault;
}

SimDeltaStats PropagationSim::apply_delta(const SimDelta& delta) {
  State& st = *state_;
  SimDeltaStats stats;
  if (delta.empty()) {
    std::lock_guard<std::mutex> lock(st.cache_mutex);
    stats.entries_before = st.cache.size();
    stats.entries_kept = st.cache.size();
    return stats;
  }

  const size_t n = indexer_.size();

  // Snapshot the pre-delta signature mask blocks; the rekey step matches
  // them byte-for-byte against the rebuilt blocks. A non-empty cache
  // implies masks were built (every cached insert goes through
  // ensure_masks), so an unbuilt-mask state migrates nothing.
  const bool had_masks = st.masks_ready.load(std::memory_order_acquire);
  std::vector<std::vector<uint64_t>> old_blocks;
  if (had_masks) {
    old_blocks.reserve(st.sig_reps.size());
    for (size_t rep : st.sig_reps) {
      const uint64_t* block = st.drop_masks.data() + rep * 3 * st.words;
      old_blocks.emplace_back(block, block + 3 * st.words);
    }
  }

  // Policies land in place -- set_policy would clear the cache wholesale,
  // which is exactly what this path avoids.
  for (const SimDelta::PolicyChange& pc : delta.policies) {
    const int32_t id = indexer_.id_of(pc.asn);
    if (id >= 0) policies_[static_cast<size_t>(id)] = pc.policy;
  }

  // Edge growth: collect per-role adjacency additions (skipping edges
  // already present), merge-rebuild each touched CSR, and remember the
  // new edges for the per-entry candidate test below.
  struct NewEdge {
    int32_t u;  // provider for p2c
    int32_t v;
    bool p2c;
  };
  std::vector<NewEdge> new_edges;
  std::vector<std::pair<int32_t, int32_t>> add_prov, add_cust, add_peer;
  auto has_edge = [](const Csr& csr, int32_t from, int32_t to) {
    return std::binary_search(csr.begin(from), csr.end(from), to);
  };
  for (const SimDelta::EdgeAdd& ea : delta.edges) {
    const int32_t a = indexer_.id_of(ea.a);
    const int32_t b = indexer_.id_of(ea.b);
    if (a < 0 || b < 0 || a == b) continue;
    if (ea.rel == astopo::Relationship::kProviderCustomer) {
      if (has_edge(customers_, a, b)) continue;
      add_cust.emplace_back(a, b);
      add_prov.emplace_back(b, a);
      new_edges.push_back(NewEdge{a, b, true});
    } else {
      if (has_edge(peers_, a, b)) continue;
      add_peer.emplace_back(a, b);
      add_peer.emplace_back(b, a);
      new_edges.push_back(NewEdge{a, b, false});
    }
  }
  auto csr_merge = [&](Csr& csr, std::vector<std::pair<int32_t, int32_t>>& adds) {
    if (adds.empty()) return;
    std::sort(adds.begin(), adds.end());
    adds.erase(std::unique(adds.begin(), adds.end()), adds.end());
    Csr merged;
    merged.offsets.assign(n + 1, 0);
    size_t ai = 0;
    for (size_t i = 0; i < n; ++i) {
      uint32_t extra = 0;
      while (ai < adds.size() &&
             adds[ai].first == static_cast<int32_t>(i)) {
        ++extra;
        ++ai;
      }
      merged.offsets[i + 1] =
          merged.offsets[i] + (csr.offsets[i + 1] - csr.offsets[i]) + extra;
    }
    merged.edges.resize(merged.offsets[n]);
    ai = 0;
    for (size_t i = 0; i < n; ++i) {
      int32_t* out = merged.edges.data() + merged.offsets[i];
      const int32_t* ob = csr.edges.data() + csr.offsets[i];
      const int32_t* const oe = csr.edges.data() + csr.offsets[i + 1];
      while (ob != oe || (ai < adds.size() &&
                          adds[ai].first == static_cast<int32_t>(i))) {
        const bool take_add =
            ai < adds.size() && adds[ai].first == static_cast<int32_t>(i) &&
            (ob == oe || adds[ai].second < *ob);
        if (take_add) {
          *out++ = adds[ai++].second;
        } else {
          *out++ = *ob++;
        }
      }
    }
    csr = std::move(merged);
  };
  csr_merge(providers_, add_prov);
  csr_merge(customers_, add_cust);
  csr_merge(peers_, add_peer);
  if (!new_edges.empty()) rebuild_descent_order();

  // Rebuild masks + signatures only when policies moved; edge growth
  // leaves the (per-AS, per-class) drop decisions untouched.
  if (!delta.policies.empty()) {
    st.masks_ready.store(false, std::memory_order_release);
  }
  ensure_masks();

  // Migrate the cache under the lock: rekey by mask-block bytes, then run
  // the candidate test for every surviving entry against the new edges.
  std::lock_guard<std::mutex> lock(st.cache_mutex);
  stats.entries_before = st.cache.size();
  if (st.cache.empty()) return stats;

  // old signature -> new signature wherever the 3*words-u64 mask block is
  // byte-identical. Injective by construction: blocks are mutually
  // distinct on both sides, so rekeying never collides.
  std::vector<int32_t> sig_map(old_blocks.size(), -1);
  for (size_t os = 0; os < old_blocks.size(); ++os) {
    for (size_t ns = 0; ns < st.sig_reps.size(); ++ns) {
      const uint64_t* block =
          st.drop_masks.data() + st.sig_reps[ns] * 3 * st.words;
      if (std::equal(old_blocks[os].begin(), old_blocks[os].end(), block)) {
        sig_map[os] = static_cast<int32_t>(ns);
        break;
      }
    }
  }

  // The entry's current packed order key at dense id `id` -- the same
  // encoding the lane engine folds over (priority, distance, next hop).
  auto key_of = [](const PropagationResult& res, int32_t id) -> uint64_t {
    const size_t i = static_cast<size_t>(id);
    uint64_t prio = 0;
    switch (res.source[i]) {
      case RouteSource::kNone:
        return kLaneUnseen;
      case RouteSource::kOrigin:
        return 0;
      case RouteSource::kCustomer:
        prio = kLaneCustomerPrio;
        break;
      case RouteSource::kPeer:
        prio = kLanePeerPrio;
        break;
      case RouteSource::kProvider:
        prio = kLaneProviderPrio;
        break;
    }
    return prio | (static_cast<uint64_t>(res.distance[i]) << 32) |
           static_cast<uint32_t>(res.next_hop[i]);
  };

  // Does any new edge offer either endpoint a better key than the cached
  // result holds? If not, the old result is still a fixpoint of the grown
  // graph (the new offers are the only new terms in the endpoint
  // equations, and every other node's equation is untouched), and the
  // unique stable solution, so it is byte-identical to a cold rebuild.
  auto improved = [&](const PropagationResult& res, uint16_t new_sig) {
    const size_t rep = st.sig_reps[new_sig];
    const uint64_t* drop_cust =
        st.drop_masks.data() + (rep * 3 + kDropCustomer) * st.words;
    const uint64_t* drop_peer =
        st.drop_masks.data() + (rep * 3 + kDropPeer) * st.words;
    const uint64_t* drop_prov =
        st.drop_masks.data() + (rep * 3 + kDropProvider) * st.words;
    // Offer across one direction: `restricted` is the valley-free export
    // rule (only origin/customer routes go to peers and providers);
    // `drop_at_to` is the receiver's ingress filter for this adjacency.
    auto offer_beats = [&](int32_t from, int32_t to, uint64_t prio,
                           const uint64_t* drop_at_to, bool restricted) {
      const size_t f = static_cast<size_t>(from);
      const RouteSource src = res.source[f];
      if (src == RouteSource::kNone) return false;
      if (restricted && src != RouteSource::kOrigin &&
          src != RouteSource::kCustomer) {
        return false;
      }
      if (test_bit(drop_at_to, to)) return false;
      const uint64_t cand = prio |
                            ((static_cast<uint64_t>(res.distance[f]) + 1)
                             << 32) |
                            static_cast<uint32_t>(from);
      return cand < key_of(res, to);
    };
    for (const NewEdge& e : new_edges) {
      if (e.p2c) {
        // v learns from its new provider u; u learns from its customer v.
        if (offer_beats(e.u, e.v, kLaneProviderPrio, drop_prov, false)) {
          return true;
        }
        if (offer_beats(e.v, e.u, kLaneCustomerPrio, drop_cust, true)) {
          return true;
        }
      } else {
        if (offer_beats(e.u, e.v, kLanePeerPrio, drop_peer, true)) return true;
        if (offer_beats(e.v, e.u, kLanePeerPrio, drop_peer, true)) return true;
      }
    }
    return false;
  };

  std::unordered_map<uint64_t, PropagationResultPtr> migrated;
  migrated.reserve(st.cache.size());
  uint64_t dropped = 0;
  // lint-ok: order-independent fold (dropped is a count, migrated is keyed by the unique rekeyed cache key)
  for (const auto& [key, result] : st.cache) {
    const uint64_t origin_part = key >> 16;
    const size_t old_sig = key & 0xffff;
    const int32_t new_sig =
        old_sig < sig_map.size() ? sig_map[old_sig] : -1;
    if (new_sig < 0 || improved(*result, static_cast<uint16_t>(new_sig))) {
      ++dropped;
      continue;
    }
    migrated.emplace(
        (origin_part << 16) | static_cast<uint16_t>(new_sig), result);
  }
  st.cache = std::move(migrated);
  st.cache_bytes = st.cache.size() * cache_entry_bytes(n);
  st.invalidated.fetch_add(dropped, std::memory_order_relaxed);
  stats.entries_invalidated = static_cast<size_t>(dropped);
  stats.entries_kept = st.cache.size();
  return stats;
}

void PropagationSim::ensure_masks() const {
  State& st = *state_;
  if (st.masks_ready.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(st.mask_mutex);
  if (st.masks_ready.load(std::memory_order_relaxed)) return;

  const size_t n = indexer_.size();
  st.words = (n + 63) / 64;

  // Variants at or above every strictness behave identically, so the
  // class space only needs max-strictness + 1 variant slots.
  uint8_t vmax = 0;
  for (const FilterPolicy& p : policies_) {
    vmax = std::max(vmax, std::max(p.customer_strictness, p.peer_strictness));
  }
  st.variant_slots = static_cast<uint16_t>(vmax) + 1;
  const size_t classes = 1 + 3 * static_cast<size_t>(st.variant_slots);

  st.drop_masks.assign(classes * 3 * st.words, 0);
  for (size_t u = 0; u < n; ++u) {
    const FilterPolicy& p = policies_[u];
    if (!p.rov && p.customer_strictness == 0 && p.peer_strictness == 0) {
      continue;  // filters nothing: leaves every bit clear
    }
    const size_t word = u >> 6;
    const uint64_t bit = 1ull << (u & 63);
    for (size_t c = 1; c < classes; ++c) {
      const size_t pair = (c - 1) / st.variant_slots;  // 0 rpki, 1 irr, 2 both
      AnnouncementClass cls;
      cls.rpki_invalid = pair != 1;
      cls.irr_invalid = pair != 0;
      cls.variant = static_cast<uint8_t>((c - 1) % st.variant_slots);
      const size_t base = c * 3 * st.words;
      if (drops(p, RouteSource::kCustomer, cls)) {
        st.drop_masks[base + kDropCustomer * st.words + word] |= bit;
      }
      if (drops(p, RouteSource::kPeer, cls)) {
        st.drop_masks[base + kDropPeer * st.words + word] |= bit;
      }
      if (drops(p, RouteSource::kProvider, cls)) {
        st.drop_masks[base + kDropProvider * st.words + word] |= bit;
      }
    }
  }

  // Collapse classes with identical masks onto shared signatures. The
  // representative list is kept in State: apply_delta() rekeys cache
  // entries by comparing pre-delta signature blocks against it.
  st.sig_of_class.assign(classes, 0);
  std::vector<size_t>& reps = st.sig_reps;
  reps.clear();
  for (size_t c = 0; c < classes; ++c) {
    const uint64_t* mine = st.drop_masks.data() + c * 3 * st.words;
    uint16_t sig = 0;
    bool found = false;
    for (size_t r = 0; r < reps.size(); ++r) {
      const uint64_t* rep = st.drop_masks.data() + reps[r] * 3 * st.words;
      if (std::equal(mine, mine + 3 * st.words, rep)) {
        sig = static_cast<uint16_t>(r);
        found = true;
        break;
      }
    }
    if (!found) {
      sig = static_cast<uint16_t>(reps.size());
      reps.push_back(c);
    }
    st.sig_of_class[c] = sig;
  }

  st.masks_ready.store(true, std::memory_order_release);
}

size_t PropagationSim::class_index(const AnnouncementClass& cls) const {
  if (!cls.rpki_invalid && !cls.irr_invalid) return 0;
  const size_t pair = cls.rpki_invalid ? (cls.irr_invalid ? 2 : 0) : 1;
  const uint16_t slots = state_->variant_slots;
  const uint16_t v = std::min<uint16_t>(cls.variant, slots - 1);
  return 1 + pair * slots + v;
}

const uint64_t* PropagationSim::mask_for(size_t cls_index,
                                         size_t adjacency) const {
  return state_->drop_masks.data() +
         (cls_index * 3 + adjacency) * state_->words;
}

PropagationResult PropagationSim::propagate(
    net::Asn origin, const AnnouncementClass& cls) const {
  // Pool workers persist across parallel_for calls, so a thread-local
  // workspace gives every worker (and the serial caller) near-zero
  // per-call allocation without any caller-side plumbing.
  static thread_local PropagationWorkspace tl_workspace;
  return propagate(origin, cls, tl_workspace);
}

PropagationResult PropagationSim::propagate(
    net::Asn origin, const AnnouncementClass& cls,
    PropagationWorkspace& workspace) const {
  return propagate_id(indexer_.id_of(origin), cls, workspace);
}

PropagationResult PropagationSim::propagate_id(
    int32_t origin_id, const AnnouncementClass& cls,
    PropagationWorkspace& ws) const {
  using NodeState = PropagationWorkspace::NodeState;
  const size_t n = indexer_.size();
  PropagationResult result;
  if (origin_id < 0) {
    result.source.assign(n, RouteSource::kNone);
    result.next_hop.assign(n, PropagationResult::kNoRoute);
    result.distance.assign(n, std::numeric_limits<uint16_t>::max());
    return result;
  }

  ensure_masks();
  const size_t ci = class_index(cls);
  const uint64_t* drop_cust = mask_for(ci, kDropCustomer);
  const uint64_t* drop_peer = mask_for(ci, kDropPeer);
  const uint64_t* drop_prov = mask_for(ci, kDropProvider);

  ws.begin(n);
  // The inner loops below hand-inline stamped()/install() against these
  // locals; `node` stays valid for the whole call (no growth after begin).
  NodeState* const node = ws.node.data();
  const uint8_t epoch = ws.epoch;
  ws.install(origin_id, RouteSource::kOrigin, PropagationResult::kNoRoute, 0);

  // ---- Phase 1: customer routes climb provider edges -------------------
  // BFS level by level; provider edges are id- (== ASN-) sorted and the
  // first offer wins, so tie-breaking is deterministic. Same-level
  // revisits can only lower the next-hop id.
  ws.frontier.push_back(origin_id);
  uint16_t level = 0;
  while (!ws.frontier.empty()) {
    ws.next.clear();
    const uint16_t next_level = static_cast<uint16_t>(level + 1);
    for (int32_t u : ws.frontier) {
      const int32_t* e = providers_.begin(u);
      const int32_t* const e_end = providers_.end(u);
      for (; e != e_end; ++e) {
        const int32_t v = *e;
        NodeState& s = node[static_cast<size_t>(v)];
        if (s.stamp == epoch) {
          if (s.source == RouteSource::kCustomer && s.distance == next_level &&
              u < s.next_hop) {
            s.next_hop = u;
          }
          continue;
        }
        if (test_bit(drop_cust, v)) continue;
        s = NodeState{u, next_level, RouteSource::kCustomer, epoch};
        ws.touched.push_back(v);
        ws.next.push_back(v);
      }
    }
    std::swap(ws.frontier, ws.next);
    ++level;
  }

  // ---- Phase 2: one lateral hop across peer edges ----------------------
  // Offers come only from ASes holding customer/origin routes (exactly
  // the touched set after phase 1); a peer route is never re-exported to
  // peers (valley-free). The apply step keeps, per target, the minimum
  // (distance, neighbor id) offer -- order-independent, so scanning the
  // touched list instead of all ids changes nothing.
  for (int32_t u : ws.touched) {
    const uint16_t dist =
        static_cast<uint16_t>(node[static_cast<size_t>(u)].distance + 1);
    const int32_t* e = peers_.begin(u);
    const int32_t* const e_end = peers_.end(u);
    for (; e != e_end; ++e) {
      const int32_t v = *e;
      if (node[static_cast<size_t>(v)].stamp == epoch) continue;
      if (test_bit(drop_peer, v)) continue;
      ws.offers.push_back(PropagationWorkspace::PeerOffer{v, u, dist});
    }
  }
  for (const auto& offer : ws.offers) {
    NodeState& s = node[static_cast<size_t>(offer.to)];
    if (s.stamp != epoch) {
      s = NodeState{offer.from, offer.dist, RouteSource::kPeer, epoch};
      ws.touched.push_back(offer.to);
      continue;
    }
    if (s.source == RouteSource::kPeer &&
        (offer.dist < s.distance ||
         (offer.dist == s.distance && offer.from < s.next_hop))) {
      s.next_hop = offer.from;
      s.distance = offer.dist;
    }
  }

  // ---- Phase 3: routes descend customer edges --------------------------
  // Any AS holding a route exports it to customers; an AS without a
  // better (customer/peer) route takes the shortest provider route,
  // lowest next-hop id on ties. The descent dominates full-graph
  // propagation (it crosses every p2c edge once), and with an
  // unpredictable install-or-skip branch per edge it is mispredict-bound,
  // so the inner loop is branchless instead: each AS carries one packed
  // 64-bit order key
  //
  //     [63:56] priority   [55:32] distance   [31:0] next-hop id
  //
  // where smaller = better. Seeds from phases 1-2 and ASes whose policy
  // drops provider routes are pinned at key 0 (never displaced); unseen
  // ASes sit at 2^64-1; a provider-route candidate at BFS level d from
  // parent u encodes as (1 << 56) | (d+1 << 32) | u. One conditional
  // move takes the min, and a change bitmap accumulates the next level's
  // frontier, so distances stay level-monotone with no stale entries.
  // (The distance field caps path lengths at 2^24 hops; distances
  // elsewhere are uint16 already.)
  constexpr uint64_t kUnseenKey = ~0ull;
  constexpr uint64_t kPinnedKey = 0ull;
  constexpr uint64_t kProviderBit = 1ull << 56;
  uint64_t* const key = ws.key.data();
  uint64_t* const ch = ws.changed.data();
  const size_t words = (n + 63) / 64;
  std::fill(ws.key.begin(), ws.key.begin() + static_cast<ptrdiff_t>(n),
            kUnseenKey);
  for (size_t w = 0; w < words; ++w) {
    uint64_t bits = drop_prov[w];
    while (bits != 0) {
      const int b = __builtin_ctzll(bits);
      bits &= bits - 1;
      key[(w << 6) + static_cast<size_t>(b)] = kPinnedKey;
    }
  }
  uint16_t max_seed = 0;
  for (int32_t u : ws.touched) {
    key[static_cast<size_t>(u)] = kPinnedKey;
    max_seed = std::max(max_seed, node[static_cast<size_t>(u)].distance);
  }
  if (ws.buckets.size() < static_cast<size_t>(max_seed) + 1) {
    ws.buckets.resize(static_cast<size_t>(max_seed) + 1);
  }
  for (int32_t u : ws.touched) {
    ws.buckets[node[static_cast<size_t>(u)].distance].push_back(u);
  }
  std::vector<int32_t>& cur = ws.frontier;
  cur.clear();
  for (size_t d = 0;; ++d) {
    if (d <= max_seed && !ws.buckets[d].empty()) {
      cur.insert(cur.end(), ws.buckets[d].begin(), ws.buckets[d].end());
      ws.buckets[d].clear();  // consumed; keeps capacity for the next call
    }
    if (cur.empty()) {
      if (d >= max_seed) break;
      continue;
    }
    const uint64_t level_base = kProviderBit | ((d + 1) << 32);
    for (int32_t u : cur) {
      const uint64_t cand = level_base | static_cast<uint32_t>(u);
      const int32_t* e = customers_.begin(u);
      const int32_t* const e_end = customers_.end(u);
      for (; e != e_end; ++e) {
        const size_t v = static_cast<size_t>(*e);
        const uint64_t have = key[v];
        const bool take = cand < have;
        key[v] = take ? cand : have;
        ch[v >> 6] |= static_cast<uint64_t>(take) << (v & 63);
      }
    }
    // The improved set is exactly the next level's frontier (a provider
    // route installed at level d can only be re-offered longer ones).
    cur.clear();
    for (size_t w = 0; w < words; ++w) {
      uint64_t bits = ch[w];
      if (bits == 0) continue;
      ch[w] = 0;
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        bits &= bits - 1;
        cur.push_back(static_cast<int32_t>((w << 6) + static_cast<size_t>(b)));
      }
    }
  }

  // Materialize the dense result in one sequential pass: provider routes
  // decode from their order key, everything else (origin/customer/peer
  // routes, and unreached ASes) reads from the stamped node state.
  result.source.resize(n);
  result.next_hop.resize(n);
  result.distance.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t k = key[i];
    if ((k >> 56) == 1) {
      result.source[i] = RouteSource::kProvider;
      result.next_hop[i] = static_cast<int32_t>(static_cast<uint32_t>(k));
      result.distance[i] = static_cast<uint16_t>(k >> 32);
    } else if (node[i].stamp == epoch) {
      const NodeState& s = node[i];
      result.source[i] = s.source;
      result.next_hop[i] = s.next_hop;
      result.distance[i] = s.distance;
    } else {
      result.source[i] = RouteSource::kNone;
      result.next_hop[i] = PropagationResult::kNoRoute;
      result.distance[i] = std::numeric_limits<uint16_t>::max();
    }
  }
  return result;
}

namespace {

// ---- Phase-3 pull fold: one AS's provider candidates -------------------
// Both variants implement the same fold. For AS v (lane keys kv) and each
// provider u, the candidate in lane l is
//
//     (provider | dist_u[l] + 1 | u)     packed as one order key,
//
// skipped when lane l never reached u or v's policy drops this class on
// provider adjacencies; v keeps the minimum of its own key and every
// candidate. The distance field is extracted by masking (all route keys
// keep it in bits [55:32]); the +1 cannot carry into the priority byte
// (2^24-hop paths don't exist). Returns whether any lane of v improved
// -- only consulted when the p2c graph has a cycle. All key values fit
// in 62 bits (kLaneUnseen is int64 max), so the signed AVX2 compares
// agree with the scalar unsigned ones.
constexpr uint64_t kLaneDistField = kLaneDistMask << 32;

bool pull_providers_scalar(const int32_t* p, const int32_t* const p_end,
                           const uint64_t* key, uint64_t* kv, size_t W,
                           uint64_t drop) {
  uint64_t any = 0;
  for (; p != p_end; ++p) {
    const uint64_t* const ku = key + static_cast<size_t>(*p) * W;
    const uint64_t base = kLaneProviderPrio | static_cast<uint32_t>(*p);
    for (size_t l = 0; l < W; ++l) {
      const uint64_t k_u = ku[l];
      const uint64_t cand = ((k_u & kLaneDistField) + (1ull << 32)) | base;
      const bool blocked = k_u == kLaneUnseen || ((drop >> l) & 1) != 0;
      const uint64_t offer = blocked ? kLaneUnseen : cand;
      const uint64_t have = kv[l];
      const uint64_t take = static_cast<uint64_t>(offer < have);
      kv[l] = take != 0 ? offer : have;
      any |= take;
    }
  }
  return any != 0;
}

#if defined(__GNUC__) && defined(__x86_64__)
#define MANRS_LANES_AVX2 1

// 4-wide variant: v's lane block is folded group by group, with the
// whole provider list folded in registers before each group is stored
// back once. Requires W % 4 == 0 (a vector tail would read into the
// next AS's lanes).
__attribute__((target("avx2"))) bool pull_providers_avx2(
    const int32_t* const p_begin, const int32_t* const p_end,
    const uint64_t* key, uint64_t* kv, size_t W, uint64_t drop) {
  const __m256i unseen =
      _mm256_set1_epi64x(static_cast<long long>(kLaneUnseen));
  const __m256i distfield =
      _mm256_set1_epi64x(static_cast<long long>(kLaneDistField));
  const __m256i step = _mm256_set1_epi64x(1ll << 32);
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i lane_shift = _mm256_set_epi64x(3, 2, 1, 0);
  __m256i any = _mm256_setzero_si256();
  // The __m256i* casts below are the x86 intrinsic load/store idiom over
  // the lane-key array; __m256i aliases any object type by design.
  for (size_t g = 0; g < W; g += 4) {
    __m256i have = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(kv + g));  // lint-ok: intrinsic load
    // Dropped lanes (rare: only filtered classes set bits) force the
    // candidate to unseen via the expanded mask.
    __m256i dropmask = _mm256_setzero_si256();
    if (drop != 0) {
      const __m256i bits = _mm256_and_si256(
          _mm256_srlv_epi64(
              _mm256_set1_epi64x(static_cast<long long>(drop >> g)),
              lane_shift),
          one);
      dropmask = _mm256_cmpeq_epi64(bits, one);
    }
    for (const int32_t* p = p_begin; p != p_end; ++p) {
      const uint64_t* const ku = key + static_cast<size_t>(*p) * W;
      const __m256i k_u = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(ku + g));  // lint-ok: intrinsic load
      const __m256i base = _mm256_set1_epi64x(static_cast<long long>(
          kLaneProviderPrio | static_cast<uint32_t>(*p)));
      const __m256i cand = _mm256_or_si256(
          _mm256_add_epi64(_mm256_and_si256(k_u, distfield), step), base);
      const __m256i blocked =
          _mm256_or_si256(_mm256_cmpeq_epi64(k_u, unseen), dropmask);
      const __m256i offer = _mm256_blendv_epi8(cand, unseen, blocked);
      const __m256i take = _mm256_cmpgt_epi64(have, offer);
      have = _mm256_blendv_epi8(have, offer, take);
      any = _mm256_or_si256(any, take);
    }
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(kv + g), have);  // lint-ok: intrinsic store
  }
  return _mm256_testz_si256(any, any) == 0;
}

const bool kHaveAvx2 = __builtin_cpu_supports("avx2") != 0;
#endif  // __GNUC__ && __x86_64__

}  // namespace

void PropagationSim::propagate_lanes(const int32_t* origin_ids,
                                     const size_t* cls_indices, size_t lanes,
                                     BatchWorkspace& ws,
                                     PropagationResult* const* results) const {
  const size_t n = indexer_.size();
  const size_t W = lanes;
  ws.begin(n, W);

  // Scatter the per-class packed drop bitsets into per-AS lane masks, one
  // pass per *distinct* class in the batch (lanes sharing a class index
  // share the scatter): after this, the inner-loop filter check is
  // `frontier_lanes & ~drop_*[v]` -- one AND-NOT per lane word.
  {
    size_t distinct_cls[kMaxBatchLanes];
    uint64_t cls_lanes[kMaxBatchLanes];
    size_t distinct = 0;
    for (size_t l = 0; l < W; ++l) {
      size_t d = 0;
      while (d < distinct && distinct_cls[d] != cls_indices[l]) ++d;
      if (d == distinct) {
        distinct_cls[d] = cls_indices[l];
        cls_lanes[d] = 0;
        ++distinct;
      }
      cls_lanes[d] |= 1ull << l;
    }
    const size_t words = (n + 63) / 64;
    uint64_t* const lane_masks[3] = {ws.drop_cust.data(), ws.drop_peer.data(),
                                     ws.drop_prov.data()};
    for (size_t d = 0; d < distinct; ++d) {
      for (size_t adj = 0; adj < 3; ++adj) {
        const uint64_t* mask = mask_for(distinct_cls[d], adj);
        uint64_t* out = lane_masks[adj];
        for (size_t w = 0; w < words; ++w) {
          uint64_t bits = mask[w];
          while (bits != 0) {
            const int b = __builtin_ctzll(bits);
            bits &= bits - 1;
            out[(w << 6) + static_cast<size_t>(b)] |= cls_lanes[d];
          }
        }
      }
    }
  }

  for (size_t l = 0; l < W; ++l) ws.seed_origin(origin_ids[l], l);

  uint64_t* const key = ws.key.data();
  uint64_t* const fmask = ws.fmask.data();
  uint64_t* const cmask = ws.cmask.data();
  uint64_t* const cust_mask = ws.cust_mask.data();
  uint64_t* const reach_mask = ws.reach_mask.data();
  const uint64_t* const drop_cust = ws.drop_cust.data();
  const uint64_t* const drop_peer = ws.drop_peer.data();
  const uint64_t* const drop_prov = ws.drop_prov.data();

  // ---- Phase 1: customer routes climb provider edges -------------------
  // Level-synchronous BFS over (AS, lane) pairs. A level-d frontier AS
  // offers the lane-invariant candidate (customer | d+1 | u) to each
  // provider; min-fold matches the single engine exactly: first install
  // wins the lane, same-level revisits can only lower the next-hop id
  // (the hop field is the low 32 bits), and earlier-level keys always
  // compare smaller. Next-level membership accumulates in cmask so a
  // frontier AS re-offered *during* its own level keeps its current mask.
  {
    std::vector<int32_t>& cur = ws.frontier;
    std::vector<int32_t>& nxt = ws.next;
    uint64_t level = 0;
    while (!cur.empty()) {
      nxt.clear();
      const uint64_t cand_base = kLaneCustomerPrio | ((level + 1) << 32);
      for (const int32_t u : cur) {
        const uint64_t m = fmask[static_cast<size_t>(u)];
        fmask[static_cast<size_t>(u)] = 0;
        const uint64_t cand = cand_base | static_cast<uint32_t>(u);
        const int32_t* e = providers_.begin(u);
        const int32_t* const e_end = providers_.end(u);
        for (; e != e_end; ++e) {
          const size_t v = static_cast<size_t>(*e);
          uint64_t active = m & ~drop_cust[v];
          if (active == 0) continue;
          uint64_t* const kv = key + v * W;
          uint64_t newbits = 0;
          do {
            const size_t l = static_cast<size_t>(__builtin_ctzll(active));
            active &= active - 1;
            // Branch-free: cand < kLaneUnseen always, so an unseen lane
            // both takes the candidate and records first-install.
            const uint64_t have = kv[l];
            const uint64_t take = static_cast<uint64_t>(cand < have);
            kv[l] = take != 0 ? cand : have;
            newbits |= static_cast<uint64_t>(have == kLaneUnseen) << l;
          } while (active != 0);
          if (newbits != 0) {
            if (cmask[v] == 0) nxt.push_back(static_cast<int32_t>(v));
            cmask[v] |= newbits;
            cust_mask[v] |= newbits;
            if (reach_mask[v] == 0) ws.touched.push_back(static_cast<int32_t>(v));
            reach_mask[v] |= newbits;
          }
        }
      }
      for (const int32_t v : nxt) {
        fmask[static_cast<size_t>(v)] = cmask[static_cast<size_t>(v)];
        cmask[static_cast<size_t>(v)] = 0;
      }
      std::swap(cur, nxt);
      ++level;
    }
  }

  // ---- Phase 2: one lateral hop across peer edges ----------------------
  // Offers come only from lanes holding customer/origin routes (cust_mask
  // over the phase-1 touched prefix -- peer routes are never re-exported
  // to peers). The immediate min-fold equals the single engine's
  // collect-then-apply: the priority field rejects folds into
  // customer-routed lanes, and min keeps the (distance, from-id) minimum
  // among peer offers. Newly reached ASes extend the touched list.
  const size_t phase1_touched = ws.touched.size();
  for (size_t t = 0; t < phase1_touched; ++t) {
    const int32_t u = ws.touched[t];
    const uint64_t m = cust_mask[static_cast<size_t>(u)];
    const uint64_t* const ku = key + static_cast<size_t>(u) * W;
    const int32_t* e = peers_.begin(u);
    const int32_t* const e_end = peers_.end(u);
    for (; e != e_end; ++e) {
      const size_t v = static_cast<size_t>(*e);
      uint64_t active = m & ~drop_peer[v];
      if (active == 0) continue;
      uint64_t* const kv = key + v * W;
      do {
        const size_t l = static_cast<size_t>(__builtin_ctzll(active));
        active &= active - 1;
        const uint64_t dist1 = ((ku[l] >> 32) & kLaneDistMask) + 1;
        const uint64_t cand =
            kLanePeerPrio | (dist1 << 32) | static_cast<uint32_t>(u);
        const uint64_t have = kv[l];
        if (have == kLaneUnseen) {
          kv[l] = cand;
          if (reach_mask[v] == 0) ws.touched.push_back(static_cast<int32_t>(v));
          reach_mask[v] |= 1ull << l;
        } else if (cand < have) {
          kv[l] = cand;
        }
      } while (active != 0);
    }
  }

  // ---- Phase 3: routes descend customer edges --------------------------
  // Pull-based: ASes are visited in provider-before-customer topological
  // order (precomputed at construction), so every provider's key is final
  // when its customers read it and each p2c edge is crossed exactly once
  // per sweep. The level-synchronous alternative re-visits an AS once per
  // distinct lane level -- lanes place their origins at different depths
  // -- which made the descent cost scale with the lane count. Results are
  // identical: the descent recurrence
  //
  //     key_v = min(seed_v, min over providers u of candidate(key_u))
  //
  // is monotone with a unique least fixpoint, which any evaluation order
  // reaches; one topological pass suffices on a DAG, and the rare cyclic
  // graph re-runs the pass until no key improves.
  {
#ifdef MANRS_LANES_AVX2
    const bool use_avx2 = kHaveAvx2 && W % 4 == 0;
#endif
    for (;;) {
      bool changed = false;
      for (const int32_t vi : descent_order_) {
        const int32_t* const p = providers_.begin(vi);
        const int32_t* const p_end = providers_.end(vi);
        if (p == p_end) continue;
        uint64_t* const kv = key + static_cast<size_t>(vi) * W;
        const uint64_t drop = drop_prov[static_cast<size_t>(vi)];
#ifdef MANRS_LANES_AVX2
        if (use_avx2) {
          changed |= pull_providers_avx2(p, p_end, key, kv, W, drop);
          continue;
        }
#endif
        changed |= pull_providers_scalar(p, p_end, key, kv, W, drop);
      }
      if (descent_is_dag_ || !changed) break;
    }
  }

  // Materialize every lane's dense result, lane-major within AS tiles:
  // one lane's writes stream sequentially while its strided key reads
  // stay inside a tile small enough to live in L2 across all lane
  // passes. The decode is branch-free: the priority byte indexes a
  // source table (0 = origin since only the origin holds key 0; 0x7f =
  // kLaneUnseen's top byte = unreached), the low word is the next hop
  // (kLaneUnseen's low word is already kNoRoute = -1), and the distance
  // field truncates to the uint16 sentinel for unreached lanes. Only the
  // origin's next hop needs patching afterwards (key 0 decodes as hop 0,
  // not kNoRoute).
  static constexpr std::array<RouteSource, 128> kSourceOfPrio = [] {
    std::array<RouteSource, 128> t{};
    t.fill(RouteSource::kNone);
    t[0] = RouteSource::kOrigin;
    t[1] = RouteSource::kCustomer;
    t[2] = RouteSource::kPeer;
    t[3] = RouteSource::kProvider;
    return t;
  }();
  RouteSource* src_of[kMaxBatchLanes];
  int32_t* hop_of[kMaxBatchLanes];
  uint16_t* dist_of[kMaxBatchLanes];
  for (size_t l = 0; l < W; ++l) {
    PropagationResult& r = *results[l];
    r.source.resize(n);
    r.next_hop.resize(n);
    r.distance.resize(n);
    src_of[l] = r.source.data();
    hop_of[l] = r.next_hop.data();
    dist_of[l] = r.distance.data();
  }
  constexpr size_t kTile = 1024;  // x 512B lane block = 512KB, L2-sized
  for (size_t base = 0; base < n; base += kTile) {
    const size_t lim = std::min(n, base + kTile);
    for (size_t l = 0; l < W; ++l) {
      RouteSource* const src = src_of[l];
      int32_t* const hop = hop_of[l];
      uint16_t* const dist = dist_of[l];
      for (size_t i = base; i < lim; ++i) {
        const uint64_t k = key[i * W + l];
        src[i] = kSourceOfPrio[k >> 56];
        hop[i] = static_cast<int32_t>(static_cast<uint32_t>(k));
        dist[i] = static_cast<uint16_t>(k >> 32);
      }
    }
  }
  for (size_t l = 0; l < W; ++l) {
    hop_of[l][static_cast<size_t>(origin_ids[l])] = PropagationResult::kNoRoute;
  }
}

std::vector<PropagationResult> PropagationSim::propagate_batch(
    const std::vector<PropagationRequest>& requests) const {
  static thread_local BatchWorkspace tl_batch_workspace;
  return propagate_batch(requests, tl_batch_workspace);
}

std::vector<PropagationResult> PropagationSim::propagate_batch(
    const std::vector<PropagationRequest>& requests,
    BatchWorkspace& workspace) const {
  const size_t n = indexer_.size();
  std::vector<PropagationResult> out(requests.size());
  std::vector<size_t> live;  // request slots with a known origin
  live.reserve(requests.size());
  for (size_t r = 0; r < requests.size(); ++r) {
    if (indexer_.id_of(requests[r].origin) < 0) {
      out[r] = unreached_result(n);
    } else {
      live.push_back(r);
    }
  }
  if (live.empty()) return out;
  ensure_masks();  // class_index reads the lazily built variant-slot count

  const size_t width = batch_width();
  int32_t ids[kMaxBatchLanes];
  size_t cls[kMaxBatchLanes];
  PropagationResult* res[kMaxBatchLanes];
  for (size_t b = 0; b < live.size(); b += width) {
    const size_t lanes = std::min(width, live.size() - b);
    for (size_t l = 0; l < lanes; ++l) {
      const PropagationRequest& req = requests[live[b + l]];
      ids[l] = indexer_.id_of(req.origin);
      cls[l] = class_index(req.cls);
      res[l] = &out[live[b + l]];
    }
    propagate_lanes(ids, cls, lanes, workspace, res);
  }
  return out;
}

PropagationResultPtr PropagationSim::propagate_cached(
    net::Asn origin, const AnnouncementClass& cls) const {
  static thread_local PropagationWorkspace tl_workspace;
  State& st = *state_;
  const int32_t origin_id = indexer_.id_of(origin);
  if (origin_id < 0 || !st.cache_enabled.load(std::memory_order_relaxed)) {
    return std::make_shared<PropagationResult>(
        propagate_id(origin_id, cls, tl_workspace));
  }

  ensure_masks();
  const uint16_t sig = st.sig_of_class[class_index(cls)];
  const uint64_t key =
      (static_cast<uint64_t>(static_cast<uint32_t>(origin_id)) << 16) | sig;
  {
    std::lock_guard<std::mutex> lock(st.cache_mutex);
    auto it = st.cache.find(key);
    if (it != st.cache.end()) {
      st.hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }

  auto result = std::make_shared<PropagationResult>(
      propagate_id(origin_id, cls, tl_workspace));
  st.misses.fetch_add(1, std::memory_order_relaxed);
  const size_t bytes = cache_entry_bytes(indexer_.size());
  {
    std::lock_guard<std::mutex> lock(st.cache_mutex);
    auto it = st.cache.find(key);
    if (it != st.cache.end()) return it->second;  // lost the race: share
    if (st.cache_bytes + bytes <= st.cache_capacity) {
      st.cache.emplace(key, result);
      st.cache_bytes += bytes;
    }
  }
  return result;
}

std::vector<PropagationResultPtr> PropagationSim::propagate_cached(
    const std::vector<PropagationRequest>& requests) const {
  State& st = *state_;
  const size_t n = indexer_.size();
  std::vector<PropagationResultPtr> out(requests.size());
  if (requests.empty()) return out;
  ensure_masks();
  const bool enabled = st.cache_enabled.load(std::memory_order_relaxed);

  // Resolve every request to its (origin, signature) key. The first
  // occurrence of a key the memo misses becomes a pending lane; later
  // occurrences share its computation (and count as hits, exactly as the
  // same sequence of single-origin calls would).
  struct Pending {
    uint64_t key;
    int32_t origin_id;
    size_t cls_index;
  };
  std::vector<Pending> pending;
  std::unordered_map<uint64_t, size_t> pending_of;
  std::vector<int64_t> slot(requests.size(), -1);
  uint64_t hit_count = 0;
  {
    std::unique_lock<std::mutex> lock(st.cache_mutex, std::defer_lock);
    if (enabled) lock.lock();
    for (size_t r = 0; r < requests.size(); ++r) {
      const int32_t origin_id = indexer_.id_of(requests[r].origin);
      if (origin_id < 0) {
        out[r] = std::make_shared<PropagationResult>(unreached_result(n));
        continue;
      }
      const size_t ci = class_index(requests[r].cls);
      const uint64_t key =
          (static_cast<uint64_t>(static_cast<uint32_t>(origin_id)) << 16) |
          st.sig_of_class[ci];
      if (enabled) {
        auto it = st.cache.find(key);
        if (it != st.cache.end()) {
          out[r] = it->second;
          ++hit_count;
          continue;
        }
      }
      auto [pit, fresh] = pending_of.emplace(key, pending.size());
      if (fresh) {
        pending.push_back(Pending{key, origin_id, ci});
      } else if (enabled) {
        ++hit_count;
      }
      slot[r] = static_cast<int64_t>(pit->second);
    }
  }
  if (enabled && hit_count > 0) {
    st.hits.fetch_add(hit_count, std::memory_order_relaxed);
  }
  if (pending.empty()) return out;

  // Chunk the misses into lane sweeps and fan the sweeps out over the
  // pool; each worker reuses one thread-local lane workspace.
  const size_t width = batch_width();
  const size_t sweeps = (pending.size() + width - 1) / width;
  std::vector<std::shared_ptr<PropagationResult>> computed(pending.size());
  util::parallel_for(sweeps, [&](size_t b) {
    static thread_local BatchWorkspace tl_batch_workspace;
    const size_t begin = b * width;
    const size_t lanes = std::min(width, pending.size() - begin);
    int32_t ids[kMaxBatchLanes];
    size_t cls[kMaxBatchLanes];
    PropagationResult* res[kMaxBatchLanes];
    for (size_t l = 0; l < lanes; ++l) {
      ids[l] = pending[begin + l].origin_id;
      cls[l] = pending[begin + l].cls_index;
      computed[b * width + l] = std::make_shared<PropagationResult>();
      res[l] = computed[b * width + l].get();
    }
    propagate_lanes(ids, cls, lanes, tl_batch_workspace, res);
  });

  std::vector<PropagationResultPtr> resolved(pending.size());
  if (enabled) {
    st.misses.fetch_add(pending.size(), std::memory_order_relaxed);
    const size_t bytes = cache_entry_bytes(n);
    std::lock_guard<std::mutex> lock(st.cache_mutex);
    for (size_t p = 0; p < pending.size(); ++p) {
      auto it = st.cache.find(pending[p].key);
      if (it != st.cache.end()) {
        resolved[p] = it->second;  // lost a race to another caller: share
        continue;
      }
      resolved[p] = std::move(computed[p]);
      if (st.cache_bytes + bytes <= st.cache_capacity) {
        st.cache.emplace(pending[p].key, resolved[p]);
        st.cache_bytes += bytes;
      }
    }
  } else {
    for (size_t p = 0; p < pending.size(); ++p) {
      resolved[p] = std::move(computed[p]);
    }
  }
  for (size_t r = 0; r < requests.size(); ++r) {
    if (slot[r] >= 0) out[r] = resolved[static_cast<size_t>(slot[r])];
  }
  return out;
}

void PropagationSim::set_cache_enabled(bool enabled) {
  state_->cache_enabled.store(enabled, std::memory_order_relaxed);
  if (!enabled) clear_cache();
}

bool PropagationSim::cache_enabled() const {
  return state_->cache_enabled.load(std::memory_order_relaxed);
}

void PropagationSim::clear_cache() {
  std::lock_guard<std::mutex> lock(state_->cache_mutex);
  state_->cache.clear();
  state_->cache_bytes = 0;
}

PropagationCacheStats PropagationSim::cache_stats() const {
  PropagationCacheStats stats;
  stats.hits = state_->hits.load(std::memory_order_relaxed);
  stats.misses = state_->misses.load(std::memory_order_relaxed);
  stats.invalidated = state_->invalidated.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(state_->cache_mutex);
  stats.entries = state_->cache.size();
  stats.bytes = state_->cache_bytes;
  return stats;
}

bgp::AsPath PropagationSim::path_from(const PropagationResult& result,
                                      net::Asn vantage) const {
  return path_from(result, vantage, nullptr);
}

bgp::AsPath PropagationSim::path_from(const PropagationResult& result,
                                      net::Asn vantage,
                                      PathStatus* status) const {
  auto fail = [&](PathStatus s) {
    if (status != nullptr) *status = s;
    return bgp::AsPath{};
  };
  const int32_t id = indexer_.id_of(vantage);
  if (id < 0) return fail(PathStatus::kNoRoute);
  const size_t limit = std::min(indexer_.size(), result.source.size());
  if (static_cast<size_t>(id) >= limit) return fail(PathStatus::kBrokenChain);
  if (result.source[static_cast<size_t>(id)] == RouteSource::kNone) {
    return fail(PathStatus::kNoRoute);
  }
  std::vector<net::Asn> hops;
  int32_t current = id;
  // A well-formed next_hop chain is a simple path, so it reaches the
  // origin within `limit` hops; anything longer is a cycle.
  for (size_t steps = 0; steps <= limit; ++steps) {
    hops.push_back(indexer_.asn_of(current));
    if (result.source[static_cast<size_t>(current)] == RouteSource::kOrigin) {
      if (status != nullptr) *status = PathStatus::kOk;
      return bgp::AsPath(std::move(hops));
    }
    const int32_t next = result.next_hop[static_cast<size_t>(current)];
    if (next < 0 || static_cast<size_t>(next) >= limit ||
        result.source[static_cast<size_t>(next)] == RouteSource::kNone) {
      return fail(PathStatus::kBrokenChain);  // chain leaves routed state
    }
    current = next;
  }
  return fail(PathStatus::kBrokenChain);  // exceeded any simple path: cycle
}

std::vector<PathView> PropagationSim::extract_paths(
    const PropagationResult& result, const std::vector<net::Asn>& vantages,
    PathArena& arena) const {
  const size_t limit = std::min(indexer_.size(), result.source.size());
  if (arena.memo_.size() < limit) {
    arena.memo_.assign(limit, PathArena::Memo{});
    arena.epoch_ = 0;
  }
  if (++arena.epoch_ == 0) {  // uint32 wrap: invalidate all stamps
    for (PathArena::Memo& m : arena.memo_) m.stamp = 0;
    arena.epoch_ = 1;
  }
  arena.hops_.clear();
  const uint32_t epoch = arena.epoch_;

  // Walks record (offset, len) spans; views materialize only after every
  // walk, so hops_ growth can never dangle an earlier span.
  std::vector<std::pair<uint32_t, uint32_t>> spans(vantages.size(), {0, 0});
  uint64_t paths = 0;
  uint64_t total_hops = 0;
  uint64_t shared_hops = 0;
  for (size_t k = 0; k < vantages.size(); ++k) {
    const int32_t id = indexer_.id_of(vantages[k]);
    if (id < 0 || static_cast<size_t>(id) >= limit) continue;
    if (result.source[static_cast<size_t>(id)] == RouteSource::kNone) continue;
    std::vector<int32_t>& scratch = arena.scratch_;
    scratch.clear();
    int32_t current = id;
    uint32_t suffix_offset = 0;
    uint32_t suffix_len = 0;
    bool ok = false;
    // Walk the next_hop chain until the origin or a hop whose suffix this
    // result already materialized; the same bound as path_from catches
    // cycles, and any broken chain yields an empty view, like path_from.
    for (size_t steps = 0; steps <= limit; ++steps) {
      const PathArena::Memo memo = arena.memo_[static_cast<size_t>(current)];
      if (memo.stamp == epoch) {
        suffix_offset = memo.offset;
        suffix_len = memo.len;
        ok = true;
        break;
      }
      scratch.push_back(current);
      if (result.source[static_cast<size_t>(current)] ==
          RouteSource::kOrigin) {
        ok = true;
        break;
      }
      const int32_t next = result.next_hop[static_cast<size_t>(current)];
      if (next < 0 || static_cast<size_t>(next) >= limit ||
          result.source[static_cast<size_t>(next)] == RouteSource::kNone) {
        break;
      }
      current = next;
    }
    if (!ok) continue;
    const uint32_t start = static_cast<uint32_t>(arena.hops_.size());
    const uint32_t total = static_cast<uint32_t>(scratch.size()) + suffix_len;
    arena.hops_.resize(static_cast<size_t>(start) + total);
    for (size_t j = 0; j < scratch.size(); ++j) {
      arena.hops_[start + j] = indexer_.asn_of(scratch[j]);
    }
    if (suffix_len > 0) {
      net::Asn* const hops = arena.hops_.data();
      std::copy(hops + suffix_offset, hops + suffix_offset + suffix_len,
                hops + start + scratch.size());
    }
    for (size_t j = 0; j < scratch.size(); ++j) {
      arena.memo_[static_cast<size_t>(scratch[j])] = PathArena::Memo{
          start + static_cast<uint32_t>(j), total - static_cast<uint32_t>(j),
          epoch};
    }
    spans[k] = {start, total};
    ++paths;
    total_hops += total;
    shared_hops += suffix_len;
  }

  std::vector<PathView> views(vantages.size());
  for (size_t k = 0; k < vantages.size(); ++k) {
    if (spans[k].second != 0) {
      views[k] = PathView{arena.hops_.data() + spans[k].first, spans[k].second};
    }
  }
  if (paths > 0) {
    g_arena_paths.fetch_add(paths, std::memory_order_relaxed);
    g_arena_hops.fetch_add(total_hops, std::memory_order_relaxed);
    g_arena_shared_hops.fetch_add(shared_hops, std::memory_order_relaxed);
  }
  return views;
}

}  // namespace manrs::sim
