#include "simulator/propagation.h"

#include <algorithm>

namespace manrs::sim {

AsIndexer::AsIndexer(const astopo::AsGraph& graph) {
  asns_ = graph.all_asns();
  ids_.reserve(asns_.size());
  for (size_t i = 0; i < asns_.size(); ++i) {
    ids_.emplace(asns_[i].value(), static_cast<int32_t>(i));
  }
}

PropagationSim::PropagationSim(const astopo::AsGraph& graph)
    : indexer_(graph) {
  size_t n = indexer_.size();
  providers_of_.resize(n);
  customers_of_.resize(n);
  peers_of_.resize(n);
  policies_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    net::Asn asn = indexer_.asn_of(static_cast<int32_t>(i));
    for (net::Asn p : graph.providers(asn)) {
      providers_of_[i].push_back(indexer_.id_of(p));
    }
    for (net::Asn c : graph.customers(asn)) {
      customers_of_[i].push_back(indexer_.id_of(c));
    }
    for (net::Asn p : graph.peers(asn)) {
      peers_of_[i].push_back(indexer_.id_of(p));
    }
    // Deterministic neighbor order (ASN ascending) so tie-breaks are
    // stable regardless of graph construction order.
    auto by_asn = [this](int32_t a, int32_t b) {
      return indexer_.asn_of(a).value() < indexer_.asn_of(b).value();
    };
    std::sort(providers_of_[i].begin(), providers_of_[i].end(), by_asn);
    std::sort(customers_of_[i].begin(), customers_of_[i].end(), by_asn);
    std::sort(peers_of_[i].begin(), peers_of_[i].end(), by_asn);
  }
}

void PropagationSim::set_policy(net::Asn asn, const FilterPolicy& policy) {
  int32_t id = indexer_.id_of(asn);
  if (id >= 0) policies_[static_cast<size_t>(id)] = policy;
}

const FilterPolicy& PropagationSim::policy(net::Asn asn) const {
  static const FilterPolicy kDefault;
  int32_t id = indexer_.id_of(asn);
  return id >= 0 ? policies_[static_cast<size_t>(id)] : kDefault;
}

uint8_t filter_variant(const net::Prefix& prefix) {
  size_t h = std::hash<net::Prefix>{}(prefix);
  return static_cast<uint8_t>(h % kFilterVariants);
}

namespace {
/// Would `receiver` drop this announcement when learning it over the given
/// adjacency?
bool drops(const FilterPolicy& receiver, RouteSource adjacency,
           const AnnouncementClass& cls) {
  if (receiver.rov && cls.rpki_invalid) return true;
  bool invalid = cls.rpki_invalid || cls.irr_invalid;
  if (!invalid) return false;
  if (adjacency == RouteSource::kCustomer &&
      cls.variant < receiver.customer_strictness) {
    return true;
  }
  if (adjacency == RouteSource::kPeer &&
      cls.variant < receiver.peer_strictness) {
    return true;
  }
  return false;
}
}  // namespace

PropagationResult PropagationSim::propagate(
    net::Asn origin, const AnnouncementClass& cls) const {
  size_t n = indexer_.size();
  PropagationResult result;
  result.source.assign(n, RouteSource::kNone);
  result.next_hop.assign(n, PropagationResult::kNoRoute);
  result.distance.assign(n, std::numeric_limits<uint16_t>::max());

  int32_t origin_id = indexer_.id_of(origin);
  if (origin_id < 0) return result;
  auto idx = [](int32_t id) { return static_cast<size_t>(id); };

  result.source[idx(origin_id)] = RouteSource::kOrigin;
  result.distance[idx(origin_id)] = 0;

  // ---- Phase 1: customer routes climb provider edges -------------------
  // BFS level by level; within a level, providers_of_ is ASN-sorted and we
  // keep the first (lowest-ASN) offer, so tie-breaking is deterministic.
  std::vector<int32_t> frontier{origin_id};
  uint16_t level = 0;
  while (!frontier.empty()) {
    std::vector<int32_t> next;
    for (int32_t u : frontier) {
      for (int32_t v : providers_of_[idx(u)]) {
        if (result.source[idx(v)] != RouteSource::kNone) {
          // Already has a customer route; prefer shorter, then lower
          // next-hop ASN. Same-level revisits can only improve the
          // next-hop ASN.
          if (result.source[idx(v)] == RouteSource::kCustomer &&
              result.distance[idx(v)] == level + 1 &&
              indexer_.asn_of(u).value() <
                  indexer_.asn_of(result.next_hop[idx(v)]).value()) {
            result.next_hop[idx(v)] = u;
          }
          continue;
        }
        if (drops(policies_[idx(v)], RouteSource::kCustomer, cls)) continue;
        result.source[idx(v)] = RouteSource::kCustomer;
        result.next_hop[idx(v)] = u;
        result.distance[idx(v)] = level + 1;
        next.push_back(v);
      }
    }
    frontier = std::move(next);
    ++level;
  }

  // ---- Phase 2: one lateral hop across peer edges ----------------------
  // Candidates come only from ASes holding customer/origin routes; a peer
  // route is never re-exported to peers (valley-free).
  struct PeerOffer {
    int32_t to;
    int32_t from;
    uint16_t dist;
  };
  std::vector<PeerOffer> offers;
  for (size_t u = 0; u < n; ++u) {
    RouteSource src = result.source[u];
    if (src != RouteSource::kOrigin && src != RouteSource::kCustomer) {
      continue;
    }
    for (int32_t v : peers_of_[u]) {
      if (result.source[idx(v)] != RouteSource::kNone) continue;
      if (drops(policies_[idx(v)], RouteSource::kPeer, cls)) continue;
      offers.push_back(PeerOffer{v, static_cast<int32_t>(u),
                                 static_cast<uint16_t>(result.distance[u] + 1)});
    }
  }
  for (const auto& offer : offers) {
    size_t v = idx(offer.to);
    bool better =
        result.source[v] == RouteSource::kNone ||
        (result.source[v] == RouteSource::kPeer &&
         (offer.dist < result.distance[v] ||
          (offer.dist == result.distance[v] &&
           indexer_.asn_of(offer.from).value() <
               indexer_.asn_of(result.next_hop[v]).value())));
    if (better) {
      result.source[v] = RouteSource::kPeer;
      result.next_hop[v] = offer.from;
      result.distance[v] = offer.dist;
    }
  }

  // ---- Phase 3: routes descend customer edges --------------------------
  // Any AS holding a route exports it to customers. Customers without a
  // better (customer/peer) route take the shortest provider route; a
  // bucket queue by distance keeps the scan linear.
  uint16_t max_dist = 0;
  for (size_t u = 0; u < n; ++u) {
    if (result.source[u] != RouteSource::kNone) {
      max_dist = std::max(max_dist, result.distance[u]);
    }
  }
  std::vector<std::vector<int32_t>> buckets(
      static_cast<size_t>(max_dist) + n + 2);
  for (size_t u = 0; u < n; ++u) {
    if (result.source[u] != RouteSource::kNone) {
      buckets[result.distance[u]].push_back(static_cast<int32_t>(u));
    }
  }
  for (size_t d = 0; d < buckets.size(); ++d) {
    for (size_t bi = 0; bi < buckets[d].size(); ++bi) {
      int32_t u = buckets[d][bi];
      if (result.distance[idx(u)] != d) continue;  // stale entry
      for (int32_t v : customers_of_[idx(u)]) {
        size_t vi = idx(v);
        RouteSource src = result.source[vi];
        if (src == RouteSource::kOrigin || src == RouteSource::kCustomer ||
            src == RouteSource::kPeer) {
          continue;  // better class of route already installed
        }
        if (drops(policies_[vi], RouteSource::kProvider, cls)) continue;
        uint16_t cand = static_cast<uint16_t>(d + 1);
        bool better = src == RouteSource::kNone ||
                      cand < result.distance[vi] ||
                      (cand == result.distance[vi] &&
                       indexer_.asn_of(u).value() <
                           indexer_.asn_of(result.next_hop[vi]).value());
        if (better) {
          bool requeue =
              src == RouteSource::kNone || cand < result.distance[vi];
          result.source[vi] = RouteSource::kProvider;
          result.next_hop[vi] = u;
          result.distance[vi] = cand;
          if (requeue && cand < buckets.size()) {
            buckets[cand].push_back(v);
          }
        }
      }
    }
  }

  return result;
}

bgp::AsPath PropagationSim::path_from(const PropagationResult& result,
                                      net::Asn vantage) const {
  int32_t id = indexer_.id_of(vantage);
  if (id < 0) return bgp::AsPath{};
  if (result.source[static_cast<size_t>(id)] == RouteSource::kNone) {
    return bgp::AsPath{};
  }
  std::vector<net::Asn> hops;
  int32_t current = id;
  // Defensive bound: a well-formed next_hop chain strictly decreases
  // distance, so it terminates; cap anyway.
  for (size_t steps = 0; steps <= indexer_.size(); ++steps) {
    hops.push_back(indexer_.asn_of(current));
    if (result.source[static_cast<size_t>(current)] == RouteSource::kOrigin) {
      return bgp::AsPath(std::move(hops));
    }
    current = result.next_hop[static_cast<size_t>(current)];
    if (current < 0) break;
  }
  return bgp::AsPath{};  // broken chain: report as unreachable
}

}  // namespace manrs::sim
