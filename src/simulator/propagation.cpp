#include "simulator/propagation.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>

#include "util/det_hash.h"
#include "util/strings.h"

namespace manrs::sim {

AsIndexer::AsIndexer(const astopo::AsGraph& graph) {
  // all_asns() is ascending, so dense ids are ASN-ascending: comparing
  // ids IS comparing ASNs (the engine's tie-breaks depend on this).
  asns_ = graph.all_asns();
  ids_.reserve(asns_.size());
  for (size_t i = 0; i < asns_.size(); ++i) {
    ids_.emplace(asns_[i].value(), static_cast<int32_t>(i));
  }
}

uint8_t filter_variant(const net::Prefix& prefix) {
  // FNV-1a over the prefix's wire bytes. std::hash would make the bucket
  // -- and through it scenario and dataset bytes -- depend on the
  // standard library in use.
  uint64_t h = util::kFnv1aOffset;
  h = util::fnv1a_byte(h, static_cast<uint8_t>(prefix.family()));
  h = util::fnv1a_byte(h, static_cast<uint8_t>(prefix.length()));
  h = util::fnv1a_u64(h, prefix.address().hi());
  h = util::fnv1a_u64(h, prefix.address().lo());
  return static_cast<uint8_t>(h % kFilterVariants);
}

namespace {

/// Reference drop rule: would `receiver` drop this announcement when
/// learning it over the given adjacency? The packed drop masks are built
/// from this; the BFS itself only ever does bit tests.
bool drops(const FilterPolicy& receiver, RouteSource adjacency,
           const AnnouncementClass& cls) {
  if (receiver.rov && cls.rpki_invalid) return true;
  bool invalid = cls.rpki_invalid || cls.irr_invalid;
  if (!invalid) return false;
  if (adjacency == RouteSource::kCustomer &&
      cls.variant < receiver.customer_strictness) {
    return true;
  }
  if (adjacency == RouteSource::kPeer &&
      cls.variant < receiver.peer_strictness) {
    return true;
  }
  return false;
}

inline bool test_bit(const uint64_t* mask, int32_t v) {
  size_t i = static_cast<size_t>(v);
  return ((mask[i >> 6] >> (i & 63)) & 1) != 0;
}

/// Approximate heap footprint of one cached PropagationResult.
size_t cache_entry_bytes(size_t n) {
  return n * (sizeof(RouteSource) + sizeof(int32_t) + sizeof(uint16_t)) + 168;
}

size_t cache_capacity_from_env() {
  constexpr size_t kDefaultMb = 2048;
  const char* env = std::getenv("MANRS_PROP_CACHE_MB");
  size_t mb = kDefaultMb;
  if (env != nullptr && *env != '\0') {
    if (auto parsed = util::parse_uint<uint64_t>(env)) {
      mb = static_cast<size_t>(*parsed);
    }
  }
  return mb * 1024 * 1024;
}

// Adjacency indices into the drop-mask table.
constexpr size_t kDropCustomer = 0;
constexpr size_t kDropPeer = 1;
constexpr size_t kDropProvider = 2;

}  // namespace

// Mutable engine state: the lazily built per-class drop masks and the
// cross-stage propagation cache. Held by pointer so PropagationSim stays
// movable despite the mutexes/atomics.
struct PropagationSim::State {
  // Drop masks: for each (class, adjacency), one bit per AS ("this AS
  // drops this class on this adjacency"). Built lazily under mask_mutex
  // on first propagate after a policy change; masks_ready publishes.
  std::mutex mask_mutex;
  std::atomic<bool> masks_ready{false};
  size_t words = 0;            // 64-bit words per bitset
  uint16_t variant_slots = 1;  // max strictness + 1; variants clamp here
  std::vector<uint64_t> drop_masks;
  // Effective drop signature per class: classes with identical masks
  // share a signature, and with it a propagation cache slot. Signature 0
  // is the all-zero (nothing drops) signature of the valid class.
  std::vector<uint16_t> sig_of_class;

  // Memoized results keyed by (origin_id << 16) | signature.
  std::mutex cache_mutex;
  std::unordered_map<uint64_t, PropagationResultPtr> cache;
  size_t cache_bytes = 0;
  size_t cache_capacity = cache_capacity_from_env();
  std::atomic<bool> cache_enabled{true};
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
};

PropagationSim::PropagationSim(const astopo::AsGraph& graph)
    : indexer_(graph), state_(std::make_unique<State>()) {
  const size_t n = indexer_.size();
  policies_.resize(n);

  // CSR adjacency, built in one counting pass + one fill pass per role.
  // graph neighbor lists hold ASNs; ids are ASN-ascending, so sorting the
  // mapped ids reproduces the deterministic ASN-ascending neighbor order.
  auto build = [&](Csr& csr, auto&& neighbors_of) {
    csr.offsets.assign(n + 1, 0);
    for (size_t i = 0; i < n; ++i) {
      csr.offsets[i + 1] =
          csr.offsets[i] +
          static_cast<uint32_t>(
              neighbors_of(indexer_.asn_of(static_cast<int32_t>(i))).size());
    }
    csr.edges.resize(csr.offsets[n]);
    for (size_t i = 0; i < n; ++i) {
      int32_t* out = csr.edges.data() + csr.offsets[i];
      for (net::Asn neighbor :
           neighbors_of(indexer_.asn_of(static_cast<int32_t>(i)))) {
        *out++ = indexer_.id_of(neighbor);
      }
      std::sort(csr.edges.data() + csr.offsets[i],
                csr.edges.data() + csr.offsets[i + 1]);
    }
  };
  build(providers_, [&](net::Asn a) -> const std::vector<net::Asn>& {
    return graph.providers(a);
  });
  build(customers_, [&](net::Asn a) -> const std::vector<net::Asn>& {
    return graph.customers(a);
  });
  build(peers_, [&](net::Asn a) -> const std::vector<net::Asn>& {
    return graph.peers(a);
  });
}

PropagationSim::~PropagationSim() = default;
PropagationSim::PropagationSim(PropagationSim&&) noexcept = default;
PropagationSim& PropagationSim::operator=(PropagationSim&&) noexcept = default;

void PropagationSim::set_policy(net::Asn asn, const FilterPolicy& policy) {
  int32_t id = indexer_.id_of(asn);
  if (id < 0) return;
  policies_[static_cast<size_t>(id)] = policy;
  state_->masks_ready.store(false, std::memory_order_release);
  clear_cache();
}

const FilterPolicy& PropagationSim::policy(net::Asn asn) const {
  static const FilterPolicy kDefault;
  int32_t id = indexer_.id_of(asn);
  return id >= 0 ? policies_[static_cast<size_t>(id)] : kDefault;
}

void PropagationSim::ensure_masks() const {
  State& st = *state_;
  if (st.masks_ready.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(st.mask_mutex);
  if (st.masks_ready.load(std::memory_order_relaxed)) return;

  const size_t n = indexer_.size();
  st.words = (n + 63) / 64;

  // Variants at or above every strictness behave identically, so the
  // class space only needs max-strictness + 1 variant slots.
  uint8_t vmax = 0;
  for (const FilterPolicy& p : policies_) {
    vmax = std::max(vmax, std::max(p.customer_strictness, p.peer_strictness));
  }
  st.variant_slots = static_cast<uint16_t>(vmax) + 1;
  const size_t classes = 1 + 3 * static_cast<size_t>(st.variant_slots);

  st.drop_masks.assign(classes * 3 * st.words, 0);
  for (size_t u = 0; u < n; ++u) {
    const FilterPolicy& p = policies_[u];
    if (!p.rov && p.customer_strictness == 0 && p.peer_strictness == 0) {
      continue;  // filters nothing: leaves every bit clear
    }
    const size_t word = u >> 6;
    const uint64_t bit = 1ull << (u & 63);
    for (size_t c = 1; c < classes; ++c) {
      const size_t pair = (c - 1) / st.variant_slots;  // 0 rpki, 1 irr, 2 both
      AnnouncementClass cls;
      cls.rpki_invalid = pair != 1;
      cls.irr_invalid = pair != 0;
      cls.variant = static_cast<uint8_t>((c - 1) % st.variant_slots);
      const size_t base = c * 3 * st.words;
      if (drops(p, RouteSource::kCustomer, cls)) {
        st.drop_masks[base + kDropCustomer * st.words + word] |= bit;
      }
      if (drops(p, RouteSource::kPeer, cls)) {
        st.drop_masks[base + kDropPeer * st.words + word] |= bit;
      }
      if (drops(p, RouteSource::kProvider, cls)) {
        st.drop_masks[base + kDropProvider * st.words + word] |= bit;
      }
    }
  }

  // Collapse classes with identical masks onto shared signatures.
  st.sig_of_class.assign(classes, 0);
  std::vector<size_t> reps;
  for (size_t c = 0; c < classes; ++c) {
    const uint64_t* mine = st.drop_masks.data() + c * 3 * st.words;
    uint16_t sig = 0;
    bool found = false;
    for (size_t r = 0; r < reps.size(); ++r) {
      const uint64_t* rep = st.drop_masks.data() + reps[r] * 3 * st.words;
      if (std::equal(mine, mine + 3 * st.words, rep)) {
        sig = static_cast<uint16_t>(r);
        found = true;
        break;
      }
    }
    if (!found) {
      sig = static_cast<uint16_t>(reps.size());
      reps.push_back(c);
    }
    st.sig_of_class[c] = sig;
  }

  st.masks_ready.store(true, std::memory_order_release);
}

size_t PropagationSim::class_index(const AnnouncementClass& cls) const {
  if (!cls.rpki_invalid && !cls.irr_invalid) return 0;
  const size_t pair = cls.rpki_invalid ? (cls.irr_invalid ? 2 : 0) : 1;
  const uint16_t slots = state_->variant_slots;
  const uint16_t v = std::min<uint16_t>(cls.variant, slots - 1);
  return 1 + pair * slots + v;
}

const uint64_t* PropagationSim::mask_for(size_t cls_index,
                                         size_t adjacency) const {
  return state_->drop_masks.data() +
         (cls_index * 3 + adjacency) * state_->words;
}

PropagationResult PropagationSim::propagate(
    net::Asn origin, const AnnouncementClass& cls) const {
  // Pool workers persist across parallel_for calls, so a thread-local
  // workspace gives every worker (and the serial caller) near-zero
  // per-call allocation without any caller-side plumbing.
  static thread_local PropagationWorkspace tl_workspace;
  return propagate(origin, cls, tl_workspace);
}

PropagationResult PropagationSim::propagate(
    net::Asn origin, const AnnouncementClass& cls,
    PropagationWorkspace& workspace) const {
  return propagate_id(indexer_.id_of(origin), cls, workspace);
}

PropagationResult PropagationSim::propagate_id(
    int32_t origin_id, const AnnouncementClass& cls,
    PropagationWorkspace& ws) const {
  using NodeState = PropagationWorkspace::NodeState;
  const size_t n = indexer_.size();
  PropagationResult result;
  if (origin_id < 0) {
    result.source.assign(n, RouteSource::kNone);
    result.next_hop.assign(n, PropagationResult::kNoRoute);
    result.distance.assign(n, std::numeric_limits<uint16_t>::max());
    return result;
  }

  ensure_masks();
  const size_t ci = class_index(cls);
  const uint64_t* drop_cust = mask_for(ci, kDropCustomer);
  const uint64_t* drop_peer = mask_for(ci, kDropPeer);
  const uint64_t* drop_prov = mask_for(ci, kDropProvider);

  ws.begin(n);
  // The inner loops below hand-inline stamped()/install() against these
  // locals; `node` stays valid for the whole call (no growth after begin).
  NodeState* const node = ws.node.data();
  const uint8_t epoch = ws.epoch;
  ws.install(origin_id, RouteSource::kOrigin, PropagationResult::kNoRoute, 0);

  // ---- Phase 1: customer routes climb provider edges -------------------
  // BFS level by level; provider edges are id- (== ASN-) sorted and the
  // first offer wins, so tie-breaking is deterministic. Same-level
  // revisits can only lower the next-hop id.
  ws.frontier.push_back(origin_id);
  uint16_t level = 0;
  while (!ws.frontier.empty()) {
    ws.next.clear();
    const uint16_t next_level = static_cast<uint16_t>(level + 1);
    for (int32_t u : ws.frontier) {
      const int32_t* e = providers_.begin(u);
      const int32_t* const e_end = providers_.end(u);
      for (; e != e_end; ++e) {
        const int32_t v = *e;
        NodeState& s = node[static_cast<size_t>(v)];
        if (s.stamp == epoch) {
          if (s.source == RouteSource::kCustomer && s.distance == next_level &&
              u < s.next_hop) {
            s.next_hop = u;
          }
          continue;
        }
        if (test_bit(drop_cust, v)) continue;
        s = NodeState{u, next_level, RouteSource::kCustomer, epoch};
        ws.touched.push_back(v);
        ws.next.push_back(v);
      }
    }
    std::swap(ws.frontier, ws.next);
    ++level;
  }

  // ---- Phase 2: one lateral hop across peer edges ----------------------
  // Offers come only from ASes holding customer/origin routes (exactly
  // the touched set after phase 1); a peer route is never re-exported to
  // peers (valley-free). The apply step keeps, per target, the minimum
  // (distance, neighbor id) offer -- order-independent, so scanning the
  // touched list instead of all ids changes nothing.
  for (int32_t u : ws.touched) {
    const uint16_t dist =
        static_cast<uint16_t>(node[static_cast<size_t>(u)].distance + 1);
    const int32_t* e = peers_.begin(u);
    const int32_t* const e_end = peers_.end(u);
    for (; e != e_end; ++e) {
      const int32_t v = *e;
      if (node[static_cast<size_t>(v)].stamp == epoch) continue;
      if (test_bit(drop_peer, v)) continue;
      ws.offers.push_back(PropagationWorkspace::PeerOffer{v, u, dist});
    }
  }
  for (const auto& offer : ws.offers) {
    NodeState& s = node[static_cast<size_t>(offer.to)];
    if (s.stamp != epoch) {
      s = NodeState{offer.from, offer.dist, RouteSource::kPeer, epoch};
      ws.touched.push_back(offer.to);
      continue;
    }
    if (s.source == RouteSource::kPeer &&
        (offer.dist < s.distance ||
         (offer.dist == s.distance && offer.from < s.next_hop))) {
      s.next_hop = offer.from;
      s.distance = offer.dist;
    }
  }

  // ---- Phase 3: routes descend customer edges --------------------------
  // Any AS holding a route exports it to customers; an AS without a
  // better (customer/peer) route takes the shortest provider route,
  // lowest next-hop id on ties. The descent dominates full-graph
  // propagation (it crosses every p2c edge once), and with an
  // unpredictable install-or-skip branch per edge it is mispredict-bound,
  // so the inner loop is branchless instead: each AS carries one packed
  // 64-bit order key
  //
  //     [63:56] priority   [55:32] distance   [31:0] next-hop id
  //
  // where smaller = better. Seeds from phases 1-2 and ASes whose policy
  // drops provider routes are pinned at key 0 (never displaced); unseen
  // ASes sit at 2^64-1; a provider-route candidate at BFS level d from
  // parent u encodes as (1 << 56) | (d+1 << 32) | u. One conditional
  // move takes the min, and a change bitmap accumulates the next level's
  // frontier, so distances stay level-monotone with no stale entries.
  // (The distance field caps path lengths at 2^24 hops; distances
  // elsewhere are uint16 already.)
  constexpr uint64_t kUnseenKey = ~0ull;
  constexpr uint64_t kPinnedKey = 0ull;
  constexpr uint64_t kProviderBit = 1ull << 56;
  uint64_t* const key = ws.key.data();
  uint64_t* const ch = ws.changed.data();
  const size_t words = (n + 63) / 64;
  std::fill(ws.key.begin(), ws.key.begin() + static_cast<ptrdiff_t>(n),
            kUnseenKey);
  for (size_t w = 0; w < words; ++w) {
    uint64_t bits = drop_prov[w];
    while (bits != 0) {
      const int b = __builtin_ctzll(bits);
      bits &= bits - 1;
      key[(w << 6) + static_cast<size_t>(b)] = kPinnedKey;
    }
  }
  uint16_t max_seed = 0;
  for (int32_t u : ws.touched) {
    key[static_cast<size_t>(u)] = kPinnedKey;
    max_seed = std::max(max_seed, node[static_cast<size_t>(u)].distance);
  }
  if (ws.buckets.size() < static_cast<size_t>(max_seed) + 1) {
    ws.buckets.resize(static_cast<size_t>(max_seed) + 1);
  }
  for (int32_t u : ws.touched) {
    ws.buckets[node[static_cast<size_t>(u)].distance].push_back(u);
  }
  std::vector<int32_t>& cur = ws.frontier;
  cur.clear();
  for (size_t d = 0;; ++d) {
    if (d <= max_seed && !ws.buckets[d].empty()) {
      cur.insert(cur.end(), ws.buckets[d].begin(), ws.buckets[d].end());
      ws.buckets[d].clear();  // consumed; keeps capacity for the next call
    }
    if (cur.empty()) {
      if (d >= max_seed) break;
      continue;
    }
    const uint64_t level_base = kProviderBit | ((d + 1) << 32);
    for (int32_t u : cur) {
      const uint64_t cand = level_base | static_cast<uint32_t>(u);
      const int32_t* e = customers_.begin(u);
      const int32_t* const e_end = customers_.end(u);
      for (; e != e_end; ++e) {
        const size_t v = static_cast<size_t>(*e);
        const uint64_t have = key[v];
        const bool take = cand < have;
        key[v] = take ? cand : have;
        ch[v >> 6] |= static_cast<uint64_t>(take) << (v & 63);
      }
    }
    // The improved set is exactly the next level's frontier (a provider
    // route installed at level d can only be re-offered longer ones).
    cur.clear();
    for (size_t w = 0; w < words; ++w) {
      uint64_t bits = ch[w];
      if (bits == 0) continue;
      ch[w] = 0;
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        bits &= bits - 1;
        cur.push_back(static_cast<int32_t>((w << 6) + static_cast<size_t>(b)));
      }
    }
  }

  // Materialize the dense result in one sequential pass: provider routes
  // decode from their order key, everything else (origin/customer/peer
  // routes, and unreached ASes) reads from the stamped node state.
  result.source.resize(n);
  result.next_hop.resize(n);
  result.distance.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t k = key[i];
    if ((k >> 56) == 1) {
      result.source[i] = RouteSource::kProvider;
      result.next_hop[i] = static_cast<int32_t>(static_cast<uint32_t>(k));
      result.distance[i] = static_cast<uint16_t>(k >> 32);
    } else if (node[i].stamp == epoch) {
      const NodeState& s = node[i];
      result.source[i] = s.source;
      result.next_hop[i] = s.next_hop;
      result.distance[i] = s.distance;
    } else {
      result.source[i] = RouteSource::kNone;
      result.next_hop[i] = PropagationResult::kNoRoute;
      result.distance[i] = std::numeric_limits<uint16_t>::max();
    }
  }
  return result;
}

PropagationResultPtr PropagationSim::propagate_cached(
    net::Asn origin, const AnnouncementClass& cls) const {
  static thread_local PropagationWorkspace tl_workspace;
  State& st = *state_;
  const int32_t origin_id = indexer_.id_of(origin);
  if (origin_id < 0 || !st.cache_enabled.load(std::memory_order_relaxed)) {
    return std::make_shared<PropagationResult>(
        propagate_id(origin_id, cls, tl_workspace));
  }

  ensure_masks();
  const uint16_t sig = st.sig_of_class[class_index(cls)];
  const uint64_t key =
      (static_cast<uint64_t>(static_cast<uint32_t>(origin_id)) << 16) | sig;
  {
    std::lock_guard<std::mutex> lock(st.cache_mutex);
    auto it = st.cache.find(key);
    if (it != st.cache.end()) {
      st.hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }

  auto result = std::make_shared<PropagationResult>(
      propagate_id(origin_id, cls, tl_workspace));
  st.misses.fetch_add(1, std::memory_order_relaxed);
  const size_t bytes = cache_entry_bytes(indexer_.size());
  {
    std::lock_guard<std::mutex> lock(st.cache_mutex);
    auto it = st.cache.find(key);
    if (it != st.cache.end()) return it->second;  // lost the race: share
    if (st.cache_bytes + bytes <= st.cache_capacity) {
      st.cache.emplace(key, result);
      st.cache_bytes += bytes;
    }
  }
  return result;
}

void PropagationSim::set_cache_enabled(bool enabled) {
  state_->cache_enabled.store(enabled, std::memory_order_relaxed);
  if (!enabled) clear_cache();
}

bool PropagationSim::cache_enabled() const {
  return state_->cache_enabled.load(std::memory_order_relaxed);
}

void PropagationSim::clear_cache() {
  std::lock_guard<std::mutex> lock(state_->cache_mutex);
  state_->cache.clear();
  state_->cache_bytes = 0;
}

PropagationCacheStats PropagationSim::cache_stats() const {
  PropagationCacheStats stats;
  stats.hits = state_->hits.load(std::memory_order_relaxed);
  stats.misses = state_->misses.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(state_->cache_mutex);
  stats.entries = state_->cache.size();
  stats.bytes = state_->cache_bytes;
  return stats;
}

bgp::AsPath PropagationSim::path_from(const PropagationResult& result,
                                      net::Asn vantage) const {
  return path_from(result, vantage, nullptr);
}

bgp::AsPath PropagationSim::path_from(const PropagationResult& result,
                                      net::Asn vantage,
                                      PathStatus* status) const {
  auto fail = [&](PathStatus s) {
    if (status != nullptr) *status = s;
    return bgp::AsPath{};
  };
  const int32_t id = indexer_.id_of(vantage);
  if (id < 0) return fail(PathStatus::kNoRoute);
  const size_t limit = std::min(indexer_.size(), result.source.size());
  if (static_cast<size_t>(id) >= limit) return fail(PathStatus::kBrokenChain);
  if (result.source[static_cast<size_t>(id)] == RouteSource::kNone) {
    return fail(PathStatus::kNoRoute);
  }
  std::vector<net::Asn> hops;
  int32_t current = id;
  // A well-formed next_hop chain is a simple path, so it reaches the
  // origin within `limit` hops; anything longer is a cycle.
  for (size_t steps = 0; steps <= limit; ++steps) {
    hops.push_back(indexer_.asn_of(current));
    if (result.source[static_cast<size_t>(current)] == RouteSource::kOrigin) {
      if (status != nullptr) *status = PathStatus::kOk;
      return bgp::AsPath(std::move(hops));
    }
    const int32_t next = result.next_hop[static_cast<size_t>(current)];
    if (next < 0 || static_cast<size_t>(next) >= limit ||
        result.source[static_cast<size_t>(next)] == RouteSource::kNone) {
      return fail(PathStatus::kBrokenChain);  // chain leaves routed state
    }
    current = next;
  }
  return fail(PathStatus::kBrokenChain);  // exceeded any simple path: cycle
}

}  // namespace manrs::sim
