// Route collectors: the simulated RouteViews / RIPE RIS.
//
// A RouteCollector peers with a set of vantage ASes and assembles the RIB
// a real collector would dump: for every announcement, each peer that has
// a route contributes its best AS path. Announcements with identical
// (origin, validity class) propagate identically, so propagation results
// are computed once per group.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/rib.h"
#include "bgp/route.h"
#include "simulator/propagation.h"

namespace manrs::sim {

/// One announcement entering the simulated routing system.
struct Announcement {
  net::Prefix prefix;
  net::Asn origin;
  AnnouncementClass cls;
};

/// Group announcements by (origin, class); the propagation unit.
struct AnnouncementGroup {
  net::Asn origin;
  AnnouncementClass cls;
  std::vector<net::Prefix> prefixes;
};

class RouteCollector {
 public:
  /// `peer_ases` are the ASes that feed this collector (a vantage-point
  /// set, like the RouteViews peers the paper inherits via IHR).
  RouteCollector(const PropagationSim& sim, std::vector<net::Asn> peer_ases,
                 std::string name = "route-views.sim");

  const std::string& name() const { return name_; }
  const std::vector<net::Asn>& peers() const { return peer_ases_; }

  /// Build the collector RIB for a set of announcements. Propagation
  /// fans out per group; the RIB itself is built by a sharded parallel
  /// merge (see merge_group_entries) instead of serial map inserts.
  bgp::Rib collect(const std::vector<Announcement>& announcements) const;

  /// The propagation half of collect(): run each group's propagation and
  /// gather its per-peer RIB entries (peer_index = position in peers();
  /// peers with no route are dropped). Slot g belongs to groups[g].
  /// Exposed so benchmarks can time propagation and merge separately.
  std::vector<std::vector<bgp::RibEntry>> collect_group_entries(
      const std::vector<AnnouncementGroup>& groups) const;

 private:
  const PropagationSim& sim_;
  std::vector<net::Asn> peer_ases_;
  std::string name_;
};

/// Group announcements by (origin, class) in deterministic key order.
/// When `group_of` is non-null it receives, per announcement, the index
/// of its group in the returned vector -- the O(1) lookup that lets
/// consumers address per-group results by index instead of re-deriving
/// string keys.
std::vector<AnnouncementGroup> group_announcements(
    const std::vector<Announcement>& announcements,
    std::vector<size_t>* group_of = nullptr);

/// Sharded parallel merge of per-group entry sets into sorted RIB rows
/// (the Rib::adopt_rows precondition). (prefix, group) pairs are sorted
/// so every distinct prefix becomes one row and ascending group order
/// reproduces the serial insert_many order; rows are then built in
/// parallel -- a chunk of consecutive rows is a prefix-range shard -- and
/// the result is byte-identical at any thread count or grain. Prefixes
/// whose groups reached no peer produce no row. Takes the entry sets by
/// value: groups referenced by a single (prefix, group) task have their
/// entries moved into the row instead of deep-copying every AsPath.
std::vector<bgp::RibRow> merge_group_entries(
    const std::vector<AnnouncementGroup>& groups,
    std::vector<std::vector<bgp::RibEntry>> group_entries);

}  // namespace manrs::sim
