// Route collectors: the simulated RouteViews / RIPE RIS.
//
// A RouteCollector peers with a set of vantage ASes and assembles the RIB
// a real collector would dump: for every announcement, each peer that has
// a route contributes its best AS path. Announcements with identical
// (origin, validity class) propagate identically, so propagation results
// are computed once per group.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/rib.h"
#include "bgp/route.h"
#include "simulator/propagation.h"

namespace manrs::sim {

/// One announcement entering the simulated routing system.
struct Announcement {
  net::Prefix prefix;
  net::Asn origin;
  AnnouncementClass cls;
};

class RouteCollector {
 public:
  /// `peer_ases` are the ASes that feed this collector (a vantage-point
  /// set, like the RouteViews peers the paper inherits via IHR).
  RouteCollector(const PropagationSim& sim, std::vector<net::Asn> peer_ases,
                 std::string name = "route-views.sim");

  const std::string& name() const { return name_; }
  const std::vector<net::Asn>& peers() const { return peer_ases_; }

  /// Build the collector RIB for a set of announcements.
  bgp::Rib collect(const std::vector<Announcement>& announcements) const;

 private:
  const PropagationSim& sim_;
  std::vector<net::Asn> peer_ases_;
  std::string name_;
};

/// Group announcements by (origin, class); the propagation unit.
struct AnnouncementGroup {
  net::Asn origin;
  AnnouncementClass cls;
  std::vector<net::Prefix> prefixes;
};

std::vector<AnnouncementGroup> group_announcements(
    const std::vector<Announcement>& announcements);

}  // namespace manrs::sim
