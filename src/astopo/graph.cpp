#include "astopo/graph.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <unordered_set>

#include "util/strings.h"

namespace manrs::astopo {

void AsGraph::add_as(net::Asn asn) { get(asn); }

AsGraph::Node& AsGraph::get(net::Asn asn) { return nodes_[asn.value()]; }

const AsGraph::Node* AsGraph::find(net::Asn asn) const {
  auto it = nodes_.find(asn.value());
  return it == nodes_.end() ? nullptr : &it->second;
}

void AsGraph::add_provider_customer(net::Asn provider, net::Asn customer) {
  if (provider == customer) return;
  if (is_provider_of(provider, customer)) return;
  get(provider).customers.push_back(customer);
  get(customer).providers.push_back(provider);
  ++edge_count_;
}

void AsGraph::add_peer_peer(net::Asn a, net::Asn b) {
  if (a == b) return;
  if (are_peers(a, b)) return;
  get(a).peers.push_back(b);
  get(b).peers.push_back(a);
  ++edge_count_;
}

bool AsGraph::contains(net::Asn asn) const { return find(asn) != nullptr; }

const std::vector<net::Asn>& AsGraph::customers(net::Asn asn) const {
  static const std::vector<net::Asn> kEmpty;
  const Node* n = find(asn);
  return n ? n->customers : kEmpty;
}

const std::vector<net::Asn>& AsGraph::providers(net::Asn asn) const {
  static const std::vector<net::Asn> kEmpty;
  const Node* n = find(asn);
  return n ? n->providers : kEmpty;
}

const std::vector<net::Asn>& AsGraph::peers(net::Asn asn) const {
  static const std::vector<net::Asn> kEmpty;
  const Node* n = find(asn);
  return n ? n->peers : kEmpty;
}

bool AsGraph::is_provider_of(net::Asn provider, net::Asn customer) const {
  const Node* n = find(provider);
  if (!n) return false;
  return std::find(n->customers.begin(), n->customers.end(), customer) !=
         n->customers.end();
}

bool AsGraph::are_peers(net::Asn a, net::Asn b) const {
  const Node* n = find(a);
  if (!n) return false;
  return std::find(n->peers.begin(), n->peers.end(), b) != n->peers.end();
}

std::vector<net::Asn> AsGraph::all_asns() const {
  std::vector<net::Asn> out;
  out.reserve(nodes_.size());
  for (const auto& [value, _] : nodes_) out.emplace_back(value);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<net::Asn> AsGraph::customer_cone(net::Asn asn) const {
  std::vector<net::Asn> cone;
  if (!contains(asn)) return cone;
  std::unordered_set<uint32_t> visited{asn.value()};
  std::vector<net::Asn> frontier{asn};
  cone.push_back(asn);
  while (!frontier.empty()) {
    net::Asn current = frontier.back();
    frontier.pop_back();
    for (net::Asn customer : customers(current)) {
      if (visited.insert(customer.value()).second) {
        cone.push_back(customer);
        frontier.push_back(customer);
      }
    }
  }
  std::sort(cone.begin(), cone.end());
  return cone;
}

size_t AsGraph::customer_cone_size(net::Asn asn) const {
  if (!contains(asn)) return 0;
  std::unordered_set<uint32_t> visited{asn.value()};
  std::vector<net::Asn> frontier{asn};
  while (!frontier.empty()) {
    net::Asn current = frontier.back();
    frontier.pop_back();
    for (net::Asn customer : customers(current)) {
      if (visited.insert(customer.value()).second) {
        frontier.push_back(customer);
      }
    }
  }
  return visited.size();
}

void AsGraph::write_as_rel(std::ostream& out) const {
  out << "# source: manrs-repro synthetic topology\n";
  out << "# <provider-as>|<customer-as>|-1  or  <peer-as>|<peer-as>|0\n";
  for (net::Asn asn : all_asns()) {
    for (net::Asn customer : customers(asn)) {
      out << asn.value() << '|' << customer.value() << "|-1\n";
    }
    for (net::Asn peer : peers(asn)) {
      // Each p2p edge appears once, lower ASN first (CAIDA convention).
      if (asn.value() < peer.value()) {
        out << asn.value() << '|' << peer.value() << "|0\n";
      }
    }
  }
}

AsGraph AsGraph::read_as_rel(std::istream& in, size_t* bad_lines) {
  AsGraph graph;
  size_t bad = 0;
  std::string line;
  while (std::getline(in, line)) {
    std::string_view view = manrs::util::trim(line);
    if (view.empty() || view.front() == '#') continue;
    auto fields = manrs::util::split(view, '|');
    if (fields.size() < 3) {
      ++bad;
      continue;
    }
    auto a = net::Asn::parse(fields[0]);
    auto b = net::Asn::parse(fields[1]);
    auto rel = manrs::util::parse_int<int>(fields[2]);
    if (!a || !b || !rel) {
      ++bad;
      continue;
    }
    if (*rel == -1) {
      graph.add_provider_customer(*a, *b);
    } else if (*rel == 0) {
      graph.add_peer_peer(*a, *b);
    } else {
      ++bad;
    }
  }
  if (bad_lines) *bad_lines = bad;
  return graph;
}

std::string to_string(AsAffinity a) {
  switch (a) {
    case AsAffinity::kSibling:
      return "Sibling";
    case AsAffinity::kCustomerProvider:
      return "C-P";
    case AsAffinity::kUnrelated:
      return "Unrelated";
  }
  return "?";
}

}  // namespace manrs::astopo
