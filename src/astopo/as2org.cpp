#include "astopo/as2org.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "util/strings.h"

namespace manrs::astopo {

void As2Org::add_organization(Organization org) {
  orgs_[org.org_id] = std::move(org);
}

void As2Org::map_as(net::Asn asn, const std::string& org_id) {
  auto it = as_to_org_.find(asn.value());
  if (it != as_to_org_.end()) {
    // Remove from the previous org's AS list.
    auto& old_list = org_to_ases_[it->second];
    old_list.erase(std::remove(old_list.begin(), old_list.end(), asn),
                   old_list.end());
  }
  as_to_org_[asn.value()] = org_id;
  org_to_ases_[org_id].push_back(asn);
}

const Organization* As2Org::organization_of(net::Asn asn) const {
  auto it = as_to_org_.find(asn.value());
  if (it == as_to_org_.end()) return nullptr;
  return find_organization(it->second);
}

const Organization* As2Org::find_organization(const std::string& org_id) const {
  auto it = orgs_.find(org_id);
  return it == orgs_.end() ? nullptr : &it->second;
}

std::vector<net::Asn> As2Org::ases_of(const std::string& org_id) const {
  auto it = org_to_ases_.find(org_id);
  if (it == org_to_ases_.end()) return {};
  std::vector<net::Asn> out = it->second;
  std::sort(out.begin(), out.end());
  return out;
}

bool As2Org::are_siblings(net::Asn a, net::Asn b) const {
  auto ita = as_to_org_.find(a.value());
  auto itb = as_to_org_.find(b.value());
  if (ita == as_to_org_.end() || itb == as_to_org_.end()) return false;
  return ita->second == itb->second;
}

std::vector<std::string> As2Org::organization_ids() const {
  std::vector<std::string> out;
  out.reserve(orgs_.size());
  for (const auto& [id, _] : orgs_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

AsAffinity As2Org::classify(net::Asn a, net::Asn b,
                            const AsGraph& graph) const {
  if (a == b) return AsAffinity::kSibling;
  if (are_siblings(a, b)) return AsAffinity::kSibling;
  if (graph.is_provider_of(a, b) || graph.is_provider_of(b, a)) {
    return AsAffinity::kCustomerProvider;
  }
  return AsAffinity::kUnrelated;
}

void As2Org::write(std::ostream& out) const {
  out << "# format:org_id|changed|name|country|source\n";
  for (const auto& id : organization_ids()) {
    const Organization& org = orgs_.at(id);
    out << org.org_id << "|20220401|" << org.name << '|' << org.country
        << '|' << net::rir_name(org.rir) << '\n';
  }
  out << "# format:aut|changed|aut_name|org_id|opaque_id|source\n";
  std::vector<uint32_t> asns;
  asns.reserve(as_to_org_.size());
  for (const auto& [asn, _] : as_to_org_) asns.push_back(asn);
  std::sort(asns.begin(), asns.end());
  for (uint32_t asn : asns) {
    const std::string& org_id = as_to_org_.at(asn);
    const Organization* org = find_organization(org_id);
    out << asn << "|20220401|AS" << asn << '|' << org_id << "||"
        << (org ? std::string(net::rir_name(org->rir)) : std::string("?"))
        << '\n';
  }
}

As2Org As2Org::read(std::istream& in, size_t* bad_lines) {
  As2Org out;
  size_t bad = 0;
  std::string line;
  enum class Section { kUnknown, kOrg, kAut } section = Section::kUnknown;
  while (std::getline(in, line)) {
    std::string_view view = manrs::util::trim(line);
    if (view.empty()) continue;
    if (view.front() == '#') {
      if (view.find("format:org_id") != std::string_view::npos) {
        section = Section::kOrg;
      } else if (view.find("format:aut") != std::string_view::npos) {
        section = Section::kAut;
      }
      continue;
    }
    auto fields = manrs::util::split(view, '|');
    if (section == Section::kOrg) {
      if (fields.size() < 5) {
        ++bad;
        continue;
      }
      Organization org;
      org.org_id = std::string(fields[0]);
      org.name = std::string(fields[2]);
      org.country = std::string(fields[3]);
      if (auto rir = net::parse_rir(fields[4])) org.rir = *rir;
      out.add_organization(std::move(org));
    } else if (section == Section::kAut) {
      if (fields.size() < 4) {
        ++bad;
        continue;
      }
      auto asn = net::Asn::parse(fields[0]);
      if (!asn) {
        ++bad;
        continue;
      }
      out.map_as(*asn, std::string(fields[3]));
    } else {
      ++bad;
    }
  }
  if (bad_lines) *bad_lines = bad;
  return out;
}

}  // namespace manrs::astopo
