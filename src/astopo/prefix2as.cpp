#include "astopo/prefix2as.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "util/strings.h"

namespace manrs::astopo {

void write_prefix2as(std::ostream& out, const Prefix2As& rows) {
  for (const auto& row : rows) {
    out << row.prefix.address().to_string() << '\t' << row.prefix.length()
        << '\t' << row.origin.value() << '\n';
  }
}

Prefix2As read_prefix2as(std::istream& in, size_t* bad_lines) {
  Prefix2As rows;
  size_t bad = 0;
  std::string line;
  while (std::getline(in, line)) {
    std::string_view view = manrs::util::trim(line);
    if (view.empty() || view.front() == '#') continue;
    auto fields = manrs::util::split_ws(view);
    if (fields.size() < 3) {
      ++bad;
      continue;
    }
    auto addr = net::IpAddress::parse(fields[0]);
    auto len = manrs::util::parse_uint<unsigned>(fields[1]);
    if (!addr || !len || *len > addr->bits()) {
      ++bad;
      continue;
    }
    // CAIDA encodes multi-origin announcements as "as1_as2" and AS sets as
    // "as1,as2"; emit one row per origin.
    bool any = false;
    for (auto part : manrs::util::split(fields[2], '_')) {
      for (auto sub : manrs::util::split(part, ',')) {
        if (auto asn = net::Asn::parse(sub)) {
          rows.push_back(bgp::PrefixOrigin{net::Prefix(*addr, *len), *asn});
          any = true;
        }
      }
    }
    if (!any) ++bad;
  }
  if (bad_lines) *bad_lines = bad;
  return rows;
}

Prefix2As prefix2as_from_rib(const bgp::Rib& rib) {
  Prefix2As rows = rib.prefix_origins();
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  return rows;
}

double routed_ipv4_space(const Prefix2As& rows) {
  // Union of [start, end) intervals over the 32-bit address space; 64-bit
  // arithmetic avoids overflow at 2^32.
  std::vector<std::pair<uint64_t, uint64_t>> intervals;
  intervals.reserve(rows.size());
  for (const auto& row : rows) {
    if (!row.prefix.is_v4()) continue;
    uint64_t start = row.prefix.address().v4_value();
    uint64_t size = 1ULL << (32 - row.prefix.length());
    intervals.emplace_back(start, start + size);
  }
  if (intervals.empty()) return 0.0;
  std::sort(intervals.begin(), intervals.end());
  uint64_t total = 0;
  uint64_t cur_start = intervals[0].first;
  uint64_t cur_end = intervals[0].second;
  for (size_t i = 1; i < intervals.size(); ++i) {
    if (intervals[i].first <= cur_end) {
      cur_end = std::max(cur_end, intervals[i].second);
    } else {
      total += cur_end - cur_start;
      cur_start = intervals[i].first;
      cur_end = intervals[i].second;
    }
  }
  total += cur_end - cur_start;
  return static_cast<double>(total);
}

}  // namespace manrs::astopo
