// AS-level topology graph with business relationships.
//
// Mirrors CAIDA's AS Relationship dataset: directed provider-to-customer
// (p2c) edges and undirected peer-to-peer (p2p) edges, serialized in the
// "<as1>|<as2>|<rel>" format (rel -1 = as1 is provider of as2, 0 = peers).
// The conformance analysis uses it to find each AS's direct customers
// (Formula 6) and to classify mismatching-origin relationships (Table 1);
// the propagation simulator uses it for Gao-Rexford routing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netbase/asn.h"

namespace manrs::astopo {

enum class Relationship : uint8_t {
  kProviderCustomer,  // first AS is the provider
  kPeerPeer,
};

class AsGraph {
 public:
  /// Ensure `asn` exists as a node (isolated if no edges are added).
  void add_as(net::Asn asn);

  /// Add provider->customer edge. Duplicate edges are ignored.
  void add_provider_customer(net::Asn provider, net::Asn customer);

  /// Add a peering edge. Duplicate edges are ignored.
  void add_peer_peer(net::Asn a, net::Asn b);

  bool contains(net::Asn asn) const;
  size_t as_count() const { return nodes_.size(); }
  size_t edge_count() const { return edge_count_; }

  /// Direct neighbors by role. Empty vector for unknown ASNs.
  const std::vector<net::Asn>& customers(net::Asn asn) const;
  const std::vector<net::Asn>& providers(net::Asn asn) const;
  const std::vector<net::Asn>& peers(net::Asn asn) const;

  /// Number of direct customers (the paper's "customer degree", §6.2).
  size_t customer_degree(net::Asn asn) const {
    return customers(asn).size();
  }

  bool is_provider_of(net::Asn provider, net::Asn customer) const;
  bool are_peers(net::Asn a, net::Asn b) const;

  /// All ASNs, ascending.
  std::vector<net::Asn> all_asns() const;

  /// Customer cone: the set of ASes reachable by only following
  /// provider->customer edges from `asn`, including `asn` itself (CAIDA's
  /// definition). Sorted ascending.
  std::vector<net::Asn> customer_cone(net::Asn asn) const;
  size_t customer_cone_size(net::Asn asn) const;

  /// CAIDA serial-1 as-rel format.
  void write_as_rel(std::ostream& out) const;
  static AsGraph read_as_rel(std::istream& in, size_t* bad_lines = nullptr);

 private:
  struct Node {
    std::vector<net::Asn> customers;
    std::vector<net::Asn> providers;
    std::vector<net::Asn> peers;
  };
  const Node* find(net::Asn asn) const;
  Node& get(net::Asn asn);

  std::unordered_map<uint32_t, Node> nodes_;
  size_t edge_count_ = 0;
};

/// How two ASes are related, for the Table 1 breakdown of mismatching
/// origins (§8.4): same organization, direct customer-provider (either
/// direction), or unrelated.
enum class AsAffinity : uint8_t {
  kSibling,
  kCustomerProvider,
  kUnrelated,
};

std::string to_string(AsAffinity a);

}  // namespace manrs::astopo
