// AS size classification and ranking.
//
// §6.2 of the paper: ASes are classified by direct customer degree using
// the Dhamdhere-Dovrolis thresholds -- small (<=2), medium (<=180), large
// (>180) -- "to perform a fair comparison of conformance between ASes of
// similar routing complexity". AS Rank orders ASes by customer-cone size,
// as CAIDA's asrank.caida.org does.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "astopo/graph.h"
#include "netbase/asn.h"

namespace manrs::astopo {

enum class SizeClass : uint8_t { kSmall = 0, kMedium = 1, kLarge = 2 };

inline constexpr size_t kSmallMaxDegree = 2;
inline constexpr size_t kMediumMaxDegree = 180;

std::string_view to_string(SizeClass c);

/// Classify by direct customer degree.
SizeClass classify_size(const AsGraph& graph, net::Asn asn);
SizeClass classify_degree(size_t customer_degree);

struct AsRankEntry {
  net::Asn asn;
  size_t customer_cone_size = 0;
  size_t customer_degree = 0;
  size_t rank = 0;  // 1 = largest cone
};

/// Full AS-Rank table: sorted by cone size descending, ties broken by
/// ascending ASN (deterministic).
std::vector<AsRankEntry> compute_as_rank(const AsGraph& graph);

}  // namespace manrs::astopo
