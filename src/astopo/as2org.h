// AS-to-organization mapping (CAIDA as2org dataset).
//
// The paper uses as2org to (1) find the headquarters country / RIR of
// MANRS organizations (§6.3), (2) enumerate sibling ASes of MANRS members
// for the registration-completeness analysis (Finding 7.0), and (3) label
// mismatching origins as Sibling in Table 1. We implement the classic
// pipe-separated CAIDA format with its two sections.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "astopo/graph.h"
#include "netbase/asn.h"
#include "netbase/rir.h"

namespace manrs::astopo {

struct Organization {
  std::string org_id;
  std::string name;
  std::string country;  // ISO 3166 alpha-2
  net::Rir rir = net::Rir::kRipe;
};

class As2Org {
 public:
  /// Register an organization (replaces any existing record with the same
  /// org_id).
  void add_organization(Organization org);

  /// Map `asn` to organization `org_id` (last mapping wins).
  void map_as(net::Asn asn, const std::string& org_id);

  size_t organization_count() const { return orgs_.size(); }
  size_t mapped_as_count() const { return as_to_org_.size(); }

  const Organization* organization_of(net::Asn asn) const;
  const Organization* find_organization(const std::string& org_id) const;

  /// All ASes mapped to `org_id`, ascending.
  std::vector<net::Asn> ases_of(const std::string& org_id) const;

  /// Sibling test: both mapped, same organization.
  bool are_siblings(net::Asn a, net::Asn b) const;

  /// All org ids, sorted (deterministic iteration for reports).
  std::vector<std::string> organization_ids() const;

  /// Relationship classification used by Table 1: Sibling beats C-P beats
  /// Unrelated.
  AsAffinity classify(net::Asn a, net::Asn b, const AsGraph& graph) const;

  /// CAIDA as2org flat-file format:
  ///   # format:org_id|changed|name|country|source
  ///   # format:aut|changed|aut_name|org_id|opaque_id|source
  void write(std::ostream& out) const;
  static As2Org read(std::istream& in, size_t* bad_lines = nullptr);

 private:
  std::unordered_map<std::string, Organization> orgs_;
  std::unordered_map<uint32_t, std::string> as_to_org_;
  std::unordered_map<std::string, std::vector<net::Asn>> org_to_ases_;
};

}  // namespace manrs::astopo
