#include "astopo/asrank.h"

#include <algorithm>

namespace manrs::astopo {

std::string_view to_string(SizeClass c) {
  switch (c) {
    case SizeClass::kSmall:
      return "small";
    case SizeClass::kMedium:
      return "medium";
    case SizeClass::kLarge:
      return "large";
  }
  return "?";
}

SizeClass classify_degree(size_t customer_degree) {
  if (customer_degree <= kSmallMaxDegree) return SizeClass::kSmall;
  if (customer_degree <= kMediumMaxDegree) return SizeClass::kMedium;
  return SizeClass::kLarge;
}

SizeClass classify_size(const AsGraph& graph, net::Asn asn) {
  return classify_degree(graph.customer_degree(asn));
}

std::vector<AsRankEntry> compute_as_rank(const AsGraph& graph) {
  std::vector<AsRankEntry> entries;
  for (net::Asn asn : graph.all_asns()) {
    AsRankEntry e;
    e.asn = asn;
    e.customer_cone_size = graph.customer_cone_size(asn);
    e.customer_degree = graph.customer_degree(asn);
    entries.push_back(e);
  }
  std::sort(entries.begin(), entries.end(),
            [](const AsRankEntry& a, const AsRankEntry& b) {
              if (a.customer_cone_size != b.customer_cone_size) {
                return a.customer_cone_size > b.customer_cone_size;
              }
              return a.asn < b.asn;
            });
  for (size_t i = 0; i < entries.size(); ++i) entries[i].rank = i + 1;
  return entries;
}

}  // namespace manrs::astopo
