// CAIDA Routeviews prefix2as dataset (pfx2as).
//
// The paper's historical routing analysis runs over annual prefix2as
// snapshots 2015-2022 (§5.1): tab-separated "address <TAB> length <TAB>
// origin" lines derived from RouteViews RIBs. We read/write the same
// format; in this reproduction the snapshots are derived from the
// simulator's collector RIBs via from_rib(), which is exactly how CAIDA
// derives theirs from RouteViews MRT dumps.
#pragma once

#include <iosfwd>
#include <vector>

#include "bgp/rib.h"
#include "bgp/route.h"
#include "netbase/asn.h"
#include "netbase/prefix.h"

namespace manrs::astopo {

/// One pfx2as row. Multi-origin prefixes appear as multiple rows (CAIDA
/// encodes them as "as1_as2"; we split them into rows on write for
/// simplicity of downstream joins -- the information content is the same).
using Prefix2As = std::vector<bgp::PrefixOrigin>;

void write_prefix2as(std::ostream& out, const Prefix2As& rows);
Prefix2As read_prefix2as(std::istream& in, size_t* bad_lines = nullptr);

/// Derive a pfx2as table from a collector RIB: every (prefix, origin) seen
/// by any peer, sorted and de-duplicated.
Prefix2As prefix2as_from_rib(const bgp::Rib& rib);

/// Total IPv4 address space (as an address count) originated by the given
/// origins in `rows`, counting each address once even when covered by
/// multiple (overlapping) prefixes of the set. Used for Fig 4b and the
/// RPKI-saturation analysis, which are fractions of *routed address
/// space*.
double routed_ipv4_space(const Prefix2As& rows);

}  // namespace manrs::astopo
