// Autonomous System Number strong type.
//
// A plain uint32_t invites mixing up ASNs with counts and indices; Asn is a
// trivially-copyable wrapper with parsing for both "64496" and "AS64496"
// spellings (IRR objects use the latter).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace manrs::net {

class Asn {
 public:
  constexpr Asn() = default;
  constexpr explicit Asn(uint32_t value) : value_(value) {}

  constexpr uint32_t value() const { return value_; }

  /// AS0 is reserved (RFC 7607) and used in RPKI to mark address space
  /// that must not be originated; the paper's AS23947 case study hinges
  /// on an AS0 ROA.
  constexpr bool is_reserved_as0() const { return value_ == 0; }

  /// Parse "64496" or "AS64496" (case-insensitive prefix).
  static std::optional<Asn> parse(std::string_view s);

  /// "AS64496".
  std::string to_string() const;

  friend constexpr auto operator<=>(Asn, Asn) = default;

 private:
  uint32_t value_ = 0;
};

}  // namespace manrs::net

template <>
struct std::hash<manrs::net::Asn> {
  size_t operator()(manrs::net::Asn a) const noexcept {
    uint64_t z = a.value() + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    return static_cast<size_t>(z ^ (z >> 31));
  }
};

namespace manrs::net {

inline std::optional<Asn> Asn::parse(std::string_view s) {
  if (s.size() >= 2 && (s[0] == 'A' || s[0] == 'a') &&
      (s[1] == 'S' || s[1] == 's')) {
    s.remove_prefix(2);
  }
  if (s.empty()) return std::nullopt;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<uint64_t>(c - '0');
    if (v > 0xffffffffULL) return std::nullopt;
  }
  return Asn(static_cast<uint32_t>(v));
}

inline std::string Asn::to_string() const {
  return "AS" + std::to_string(value_);
}

}  // namespace manrs::net
