// Regional Internet Registries.
//
// The five RIRs appear all over the pipeline: they are the RPKI trust
// anchors, the operators of the authoritative IRR databases, and the axis
// of the paper's geographic analysis (Fig 4a/4b).
#pragma once

#include <array>
#include <optional>
#include <string>
#include <string_view>

namespace manrs::net {

enum class Rir : uint8_t {
  kAfrinic = 0,
  kLacnic = 1,
  kApnic = 2,
  kRipe = 3,
  kArin = 4,
};

inline constexpr std::array<Rir, 5> kAllRirs{
    Rir::kAfrinic, Rir::kLacnic, Rir::kApnic, Rir::kRipe, Rir::kArin};

inline constexpr std::string_view rir_name(Rir rir) {
  switch (rir) {
    case Rir::kAfrinic:
      return "AFRINIC";
    case Rir::kLacnic:
      return "LACNIC";
    case Rir::kApnic:
      return "APNIC";
    case Rir::kRipe:
      return "RIPE";
    case Rir::kArin:
      return "ARIN";
  }
  return "?";
}

inline std::optional<Rir> parse_rir(std::string_view s) {
  for (Rir r : kAllRirs) {
    if (s == rir_name(r)) return r;
  }
  // Tolerate common alternate spellings found in registry dumps.
  if (s == "RIPE NCC" || s == "ripencc" || s == "RIPENCC") return Rir::kRipe;
  if (s == "afrinic") return Rir::kAfrinic;
  if (s == "lacnic") return Rir::kLacnic;
  if (s == "apnic") return Rir::kApnic;
  if (s == "arin") return Rir::kArin;
  return std::nullopt;
}

}  // namespace manrs::net
