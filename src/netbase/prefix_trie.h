// Binary radix trie keyed by CIDR prefixes.
//
// This is the central index of the pipeline: the RPKI validator needs "all
// VRPs whose prefix covers this route" (walk from the root towards the
// query), the IRR validator needs the same over route objects, and the
// saturation analysis needs "all entries covered by this prefix" (subtree
// enumeration). One trie per family internally; the API hides that.
//
// Values are stored in per-node vectors, so multiple entries may share a
// prefix (e.g. several ROAs for the same prefix with different ASNs).
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "netbase/prefix.h"

namespace manrs::net {

template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() = default;

  /// Number of stored values (not distinct prefixes).
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void insert(const Prefix& prefix, T value) {
    Node* node = &root(prefix.family());
    for (unsigned depth = 0; depth < prefix.length(); ++depth) {
      bool b = prefix.address().bit(depth);
      auto& child = node->children[b ? 1 : 0];
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    node->values.push_back(std::move(value));
    ++size_;
  }

  /// Values stored at exactly `prefix` (empty vector if none).
  const std::vector<T>& exact(const Prefix& prefix) const {
    static const std::vector<T> kEmpty;
    const Node* node = find_node(prefix);
    return node ? node->values : kEmpty;
  }

  /// Erase every value stored at exactly `prefix` for which `pred(value)`
  /// holds; returns the number removed. Emptied nodes stay allocated --
  /// every walk already skips nodes with no values, and the staged-delta
  /// churn that drives erasure re-inserts at the same prefixes, so keeping
  /// the skeleton avoids re-allocating the path on the next add.
  template <typename Pred>
  size_t erase_at(const Prefix& prefix, Pred&& pred) {
    Node* node = &root(prefix.family());
    for (unsigned depth = 0; depth < prefix.length(); ++depth) {
      bool b = prefix.address().bit(depth);
      Node* child = node->children[b ? 1 : 0].get();
      if (!child) return 0;
      node = child;
    }
    auto it = std::remove_if(node->values.begin(), node->values.end(), pred);
    size_t removed = static_cast<size_t>(node->values.end() - it);
    node->values.erase(it, node->values.end());
    size_ -= removed;
    return removed;
  }

  /// Invoke `fn(prefix_length, value)` for every entry whose prefix covers
  /// `query` (i.e., equal or less specific). Entries are visited from the
  /// least specific (shortest) to the most specific.
  template <typename Fn>
  void for_each_covering(const Prefix& query, Fn&& fn) const {
    const Node* node = &croot(query.family());
    for (unsigned depth = 0;; ++depth) {
      for (const T& v : node->values) fn(depth, v);
      if (depth >= query.length()) break;
      bool b = query.address().bit(depth);
      const Node* child = node->children[b ? 1 : 0].get();
      if (!child) break;
      node = child;
    }
  }

  /// Collect all covering values (least specific first).
  std::vector<T> covering(const Prefix& query) const {
    std::vector<T> out;
    for_each_covering(query, [&](unsigned, const T& v) { out.push_back(v); });
    return out;
  }

  /// Invoke `fn(value)` for every entry equal to or more specific than
  /// `query` (subtree enumeration).
  template <typename Fn>
  void for_each_covered(const Prefix& query, Fn&& fn) const {
    const Node* node = find_node(query);
    if (!node) return;
    visit_subtree(node, fn);
  }

  /// True iff any stored entry covers `query`.
  bool any_covering(const Prefix& query) const {
    bool found = false;
    const Node* node = &croot(query.family());
    for (unsigned depth = 0;; ++depth) {
      if (!node->values.empty()) {
        found = true;
        break;
      }
      if (depth >= query.length()) break;
      bool b = query.address().bit(depth);
      const Node* child = node->children[b ? 1 : 0].get();
      if (!child) break;
      node = child;
    }
    return found;
  }

  /// Visit every stored value.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    visit_subtree(&v4_root_, fn);
    visit_subtree(&v6_root_, fn);
  }

  void clear() {
    v4_root_ = Node{};
    v6_root_ = Node{};
    size_ = 0;
  }

 private:
  struct Node {
    std::unique_ptr<Node> children[2];
    std::vector<T> values;
  };

  Node& root(Family f) { return f == Family::kIpv4 ? v4_root_ : v6_root_; }
  const Node& croot(Family f) const {
    return f == Family::kIpv4 ? v4_root_ : v6_root_;
  }

  const Node* find_node(const Prefix& prefix) const {
    const Node* node = &croot(prefix.family());
    for (unsigned depth = 0; depth < prefix.length(); ++depth) {
      bool b = prefix.address().bit(depth);
      const Node* child = node->children[b ? 1 : 0].get();
      if (!child) return nullptr;
      node = child;
    }
    return node;
  }

  template <typename Fn>
  static void visit_subtree(const Node* node, Fn& fn) {
    // Iterative DFS; recursion depth could reach 128 which is fine, but an
    // explicit stack avoids any pathological template-instantiation depth.
    std::vector<const Node*> stack{node};
    while (!stack.empty()) {
      const Node* n = stack.back();
      stack.pop_back();
      for (const T& v : n->values) fn(v);
      if (n->children[0]) stack.push_back(n->children[0].get());
      if (n->children[1]) stack.push_back(n->children[1].get());
    }
  }

  Node v4_root_;
  Node v6_root_;
  size_t size_ = 0;
};

}  // namespace manrs::net
