// CIDR prefix value type.
//
// A Prefix is a masked IpAddress plus a length. Construction canonicalizes
// (host bits zeroed) so equality and hashing are structural.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "netbase/ip.h"

namespace manrs::net {

class Prefix {
 public:
  /// Default: 0.0.0.0/0.
  Prefix() = default;

  /// Canonicalizing constructor: bits beyond `length` are zeroed. `length`
  /// is clamped to the family width.
  Prefix(IpAddress address, unsigned length);

  /// Parse "addr/len", e.g. "192.0.2.0/24" or "2001:db8::/32".
  static std::optional<Prefix> parse(std::string_view s);

  /// Convenience for literals in tests; aborts on malformed input.
  static Prefix must_parse(std::string_view s);

  const IpAddress& address() const { return address_; }
  unsigned length() const { return length_; }
  Family family() const { return address_.family(); }
  bool is_v4() const { return address_.is_v4(); }

  /// True iff `other` is equal to or more specific than *this (same
  /// family, other.length >= length, and the first `length` bits match).
  bool contains(const Prefix& other) const;

  /// True iff `addr` falls inside this prefix.
  bool contains(const IpAddress& addr) const;

  /// Number of addresses covered, as a double (v4 /0 = 2^32; v6 values can
  /// exceed 2^64 so double is the honest type for address-space accounting,
  /// which the paper reports as fractions of routed space).
  double address_count() const;

  /// "192.0.2.0/24".
  std::string to_string() const;

  friend auto operator<=>(const Prefix& a, const Prefix& b) {
    if (auto c = a.address_ <=> b.address_; c != 0) return c;
    return a.length_ <=> b.length_;
  }
  friend bool operator==(const Prefix&, const Prefix&) = default;

 private:
  IpAddress address_;
  unsigned length_ = 0;
};

}  // namespace manrs::net

template <>
struct std::hash<manrs::net::Prefix> {
  size_t operator()(const manrs::net::Prefix& p) const noexcept {
    uint64_t h = p.address().hi() * 0x9e3779b97f4a7c15ULL;
    h ^= p.address().lo() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h ^= (static_cast<uint64_t>(p.length()) << 8) |
         static_cast<uint64_t>(p.family());
    return static_cast<size_t>(h * 0xbf58476d1ce4e5b9ULL);
  }
};
