#include "netbase/prefix.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/strings.h"

namespace manrs::net {

Prefix::Prefix(IpAddress address, unsigned length) {
  unsigned width = address.bits();
  if (length > width) length = width;
  length_ = length;
  // Mask position: v4 addresses sit in the top 32 bits of the 128-bit
  // value, so masking at `length` works directly for both families.
  address_ = address.masked(length);
}

std::optional<Prefix> Prefix::parse(std::string_view s) {
  s = manrs::util::trim(s);
  size_t slash = s.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = IpAddress::parse(s.substr(0, slash));
  if (!addr) return std::nullopt;
  auto len = manrs::util::parse_uint<unsigned>(s.substr(slash + 1));
  if (!len || *len > addr->bits()) return std::nullopt;
  return Prefix(*addr, *len);
}

Prefix Prefix::must_parse(std::string_view s) {
  auto p = parse(s);
  if (!p) {
    std::fprintf(stderr, "Prefix::must_parse: malformed prefix '%.*s'\n",
                 static_cast<int>(s.size()), s.data());
    std::abort();
  }
  return *p;
}

bool Prefix::contains(const Prefix& other) const {
  if (family() != other.family()) return false;
  if (other.length_ < length_) return false;
  return other.address_.masked(length_) == address_;
}

bool Prefix::contains(const IpAddress& addr) const {
  if (family() != addr.family()) return false;
  return addr.masked(length_) == address_;
}

double Prefix::address_count() const {
  unsigned width = address_.bits();
  return std::pow(2.0, static_cast<double>(width - length_));
}

std::string Prefix::to_string() const {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%s/%u", address_.to_string().c_str(),
                length_);
  return buf;
}

}  // namespace manrs::net
