// IP address value type covering IPv4 and IPv6.
//
// Addresses are stored as a 128-bit big-endian quantity (two uint64 words);
// IPv4 addresses occupy the high 32 bits of `hi` so that "bit i" means the
// i-th most significant bit of the address for both families. This makes
// longest-prefix-match tries family-agnostic.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace manrs::net {

enum class Family : uint8_t { kIpv4 = 4, kIpv6 = 6 };

/// Address width in bits for a family (32 or 128).
constexpr unsigned family_bits(Family f) {
  return f == Family::kIpv4 ? 32u : 128u;
}

class IpAddress {
 public:
  /// Default: IPv4 0.0.0.0.
  constexpr IpAddress() = default;

  /// IPv4 from host-order 32-bit value (e.g. 0xC0000200 = 192.0.2.0).
  static constexpr IpAddress v4(uint32_t value) {
    IpAddress a;
    a.family_ = Family::kIpv4;
    a.hi_ = static_cast<uint64_t>(value) << 32;
    a.lo_ = 0;
    return a;
  }

  /// IPv6 from two host-order 64-bit words (hi = first 8 bytes).
  static constexpr IpAddress v6(uint64_t hi, uint64_t lo) {
    IpAddress a;
    a.family_ = Family::kIpv6;
    a.hi_ = hi;
    a.lo_ = lo;
    return a;
  }

  /// Parse dotted-quad IPv4 or RFC 4291 IPv6 (with "::" compression and
  /// optional embedded IPv4 tail). Returns nullopt on malformed input.
  static std::optional<IpAddress> parse(std::string_view s);

  Family family() const { return family_; }
  bool is_v4() const { return family_ == Family::kIpv4; }
  bool is_v6() const { return family_ == Family::kIpv6; }
  unsigned bits() const { return family_bits(family_); }

  /// IPv4 value in host order. Precondition: is_v4().
  uint32_t v4_value() const { return static_cast<uint32_t>(hi_ >> 32); }

  uint64_t hi() const { return hi_; }
  uint64_t lo() const { return lo_; }

  /// The i-th most significant bit (0-based). i < bits().
  bool bit(unsigned i) const {
    // IPv4 addresses live in the top 32 bits of hi_, so the same indexing
    // works for both families.
    if (i < 64) return (hi_ >> (63 - i)) & 1;
    return (lo_ >> (127 - i)) & 1;
  }

  /// Copy with the i-th most significant bit set to `value`.
  IpAddress with_bit(unsigned i, bool value) const;

  /// Zero all bits at positions >= len (mask to a prefix of length `len`).
  IpAddress masked(unsigned len) const;

  /// Canonical text: dotted quad for v4, RFC 5952 compressed for v6.
  std::string to_string() const;

  friend auto operator<=>(const IpAddress& a, const IpAddress& b) {
    if (auto c = a.family_ <=> b.family_; c != 0) return c;
    if (auto c = a.hi_ <=> b.hi_; c != 0) return c;
    return a.lo_ <=> b.lo_;
  }
  friend bool operator==(const IpAddress&, const IpAddress&) = default;

 private:
  Family family_ = Family::kIpv4;
  uint64_t hi_ = 0;
  uint64_t lo_ = 0;
};

}  // namespace manrs::net
