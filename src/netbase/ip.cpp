#include "netbase/ip.h"

#include <array>
#include <cstdio>

#include "util/strings.h"

namespace manrs::net {

namespace {

std::optional<IpAddress> parse_v4(std::string_view s) {
  auto parts = manrs::util::split(s, '.');
  if (parts.size() != 4) return std::nullopt;
  uint32_t value = 0;
  for (auto part : parts) {
    if (part.empty() || part.size() > 3) return std::nullopt;
    auto octet = manrs::util::parse_uint<uint32_t>(part);
    if (!octet || *octet > 255) return std::nullopt;
    value = (value << 8) | *octet;
  }
  return IpAddress::v4(value);
}

std::optional<uint16_t> parse_hextet(std::string_view s) {
  if (s.empty() || s.size() > 4) return std::nullopt;
  uint32_t value = 0;
  for (char c : s) {
    uint32_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<uint32_t>(c - 'A' + 10);
    } else {
      return std::nullopt;
    }
    value = (value << 4) | digit;
  }
  return static_cast<uint16_t>(value);
}

std::optional<IpAddress> parse_v6(std::string_view s) {
  // Split on "::" (at most one occurrence).
  size_t gap = s.find("::");
  std::vector<std::string_view> head, tail;
  if (gap != std::string_view::npos) {
    if (s.find("::", gap + 1) != std::string_view::npos) return std::nullopt;
    std::string_view left = s.substr(0, gap);
    std::string_view right = s.substr(gap + 2);
    if (!left.empty()) head = manrs::util::split(left, ':');
    if (!right.empty()) tail = manrs::util::split(right, ':');
  } else {
    head = manrs::util::split(s, ':');
  }

  // Expand an embedded IPv4 tail ("::ffff:192.0.2.1").
  auto expand_v4 = [](std::vector<std::string_view>& groups,
                      std::array<uint16_t, 8>& scratch,
                      size_t& extra) -> bool {
    extra = 0;
    if (groups.empty()) return true;
    std::string_view last = groups.back();
    if (last.find('.') == std::string_view::npos) return true;
    auto v4 = parse_v4(last);
    if (!v4) return false;
    uint32_t v = v4->v4_value();
    scratch[0] = static_cast<uint16_t>(v >> 16);
    scratch[1] = static_cast<uint16_t>(v & 0xffff);
    groups.pop_back();
    extra = 2;
    return true;
  };

  std::array<uint16_t, 8> head_v4{}, tail_v4{};
  size_t head_extra = 0, tail_extra = 0;
  if (gap == std::string_view::npos) {
    if (!expand_v4(head, head_v4, head_extra)) return std::nullopt;
  } else {
    if (!expand_v4(tail, tail_v4, tail_extra)) return std::nullopt;
  }

  std::vector<uint16_t> head_groups, tail_groups;
  for (auto g : head) {
    auto h = parse_hextet(g);
    if (!h) return std::nullopt;
    head_groups.push_back(*h);
  }
  for (size_t i = 0; i < head_extra; ++i) head_groups.push_back(head_v4[i]);
  for (auto g : tail) {
    auto h = parse_hextet(g);
    if (!h) return std::nullopt;
    tail_groups.push_back(*h);
  }
  for (size_t i = 0; i < tail_extra; ++i) tail_groups.push_back(tail_v4[i]);

  size_t total = head_groups.size() + tail_groups.size();
  if (gap == std::string_view::npos) {
    if (total != 8) return std::nullopt;
  } else {
    if (total > 7 && !(total == 8 && head_groups.empty() &&
                       tail_groups.empty())) {
      // "::" must compress at least one group unless the address is all
      // groups already; with 8 explicit groups "::" is redundant/invalid.
      if (total >= 8) return std::nullopt;
    }
  }

  std::array<uint16_t, 8> groups{};
  for (size_t i = 0; i < head_groups.size(); ++i) groups[i] = head_groups[i];
  for (size_t i = 0; i < tail_groups.size(); ++i) {
    groups[8 - tail_groups.size() + i] = tail_groups[i];
  }

  uint64_t hi = 0, lo = 0;
  for (int i = 0; i < 4; ++i) hi = (hi << 16) | groups[static_cast<size_t>(i)];
  for (int i = 4; i < 8; ++i) lo = (lo << 16) | groups[static_cast<size_t>(i)];
  return IpAddress::v6(hi, lo);
}

}  // namespace

std::optional<IpAddress> IpAddress::parse(std::string_view s) {
  s = manrs::util::trim(s);
  if (s.empty()) return std::nullopt;
  if (s.find(':') != std::string_view::npos) return parse_v6(s);
  return parse_v4(s);
}

IpAddress IpAddress::with_bit(unsigned i, bool value) const {
  IpAddress out = *this;
  if (i < 64) {
    uint64_t mask = 1ULL << (63 - i);
    out.hi_ = value ? (hi_ | mask) : (hi_ & ~mask);
  } else {
    uint64_t mask = 1ULL << (127 - i);
    out.lo_ = value ? (lo_ | mask) : (lo_ & ~mask);
  }
  return out;
}

IpAddress IpAddress::masked(unsigned len) const {
  IpAddress out = *this;
  if (len >= 128) return out;
  if (len >= 64) {
    unsigned keep = len - 64;
    out.lo_ = keep == 0 ? 0 : (lo_ & (~0ULL << (64 - keep)));
  } else {
    out.hi_ = len == 0 ? 0 : (hi_ & (~0ULL << (64 - len)));
    out.lo_ = 0;
  }
  return out;
}

std::string IpAddress::to_string() const {
  char buf[64];
  if (is_v4()) {
    uint32_t v = v4_value();
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (v >> 24) & 0xff,
                  (v >> 16) & 0xff, (v >> 8) & 0xff, v & 0xff);
    return buf;
  }
  // RFC 5952: compress the longest run of zero groups (>= 2), lowercase hex.
  std::array<uint16_t, 8> groups{};
  for (int i = 0; i < 4; ++i) {
    groups[static_cast<size_t>(i)] =
        static_cast<uint16_t>(hi_ >> (48 - 16 * i));
  }
  for (int i = 0; i < 4; ++i) {
    groups[static_cast<size_t>(4 + i)] =
        static_cast<uint16_t>(lo_ >> (48 - 16 * i));
  }
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (groups[static_cast<size_t>(i)] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[static_cast<size_t>(j)] == 0) ++j;
    if (j - i > best_len) {
      best_len = j - i;
      best_start = i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  for (int i = 0; i < 8; ++i) {
    if (i == best_start) {
      out += "::";
      i += best_len - 1;
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ':';
    std::snprintf(buf, sizeof(buf), "%x", groups[static_cast<size_t>(i)]);
    out += buf;
  }
  if (out.empty()) out = "::";
  return out;
}

}  // namespace manrs::net
