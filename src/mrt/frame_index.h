// MRT frame scan: the cheap first pass of the streaming ingest.
//
// An MRT file is a chain of records, each a 12-byte common header
// (timestamp, type, subtype, body length) followed by the body; the
// only way to find record N+1 is to hop over record N's declared
// length. scan_frames() walks that chain once -- touching only the
// headers, never the bodies -- and emits a compact offset index
// (RecordRef per record) that the decode pass then fans out over with
// zero-copy std::span bodies straight off the mapping.
//
// Two scanners share one result shape and byte-identical semantics:
//
//   * scan_frames(data)           -- serial header hop, O(records).
//   * scan_frames_parallel(data)  -- block-parallel: the file is cut
//     into blocks, each worker probes the first plausible header at or
//     after its block start (a candidate anchor must start a chain of
//     in-bounds headers) and frames its block speculatively; a serial
//     stitch pass then verifies that every worker's chain hands off
//     exactly at the next worker's anchor. Blocks whose anchor guess
//     was wrong (or missing -- a record spanning the whole block) are
//     re-framed serially from the verified handoff, so the result is
//     ALWAYS the serial chain: speculation buys parallelism, the
//     stitch pass buys certainty.
//
// Corruption semantics match the streaming readers exactly: the scan
// ends at the first truncated header, oversized declared length, or
// body running past EOF (`bad` = 1, `truncated` = true); records after
// that point are unreachable because the chain itself is broken.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace manrs::mrt {

/// One record located in the byte stream: the decoded common header
/// plus the body's [offset, offset+length) span into the scanned data.
struct RecordRef {
  uint32_t timestamp = 0;
  uint16_t type = 0;
  uint16_t subtype = 0;
  uint32_t length = 0;  // body length (header excluded)
  uint64_t offset = 0;  // body offset into the scanned span
};

struct FrameIndex {
  std::vector<RecordRef> records;
  size_t bad = 0;          // 1 when the chain ended on a corrupt header
  bool truncated = false;  // scan stopped before clean EOF
  uint64_t scanned_bytes = 0;  // offset of the first byte not framed
};

/// Serial header hop over the whole span.
FrameIndex scan_frames(std::span<const uint8_t> data);

/// Block-parallel scan (speculative anchors + serial stitch verify).
/// Produces a FrameIndex byte-identical to scan_frames(data) on every
/// input. `block_hint` overrides the per-worker block size (0 = auto
/// from the pool width); exposed so tests can force records to
/// straddle block boundaries.
FrameIndex scan_frames_parallel(std::span<const uint8_t> data,
                                size_t block_hint = 0);

}  // namespace manrs::mrt
