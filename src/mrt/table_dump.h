// MRT TABLE_DUMP_V2 encoding and decoding (RFC 6396 §4.3).
//
// RouteViews and RIPE RIS publish RIB snapshots in this format; the
// paper's BGP inputs (via IHR) ultimately come from such dumps. Our
// simulator serializes collector RIBs to TABLE_DUMP_V2 and the analysis
// pipeline parses them back, so the decode path is exercised exactly as a
// bgpdump/libbgpstream pipeline would exercise it.
//
// Supported records: PEER_INDEX_TABLE, RIB_IPV4_UNICAST, RIB_IPV6_UNICAST.
// Supported path attributes on decode: ORIGIN, AS_PATH (AS_SEQUENCE, 4-byte
// ASNs); other attributes are skipped by length. AS_SET segments are
// rejected per measurement-pipeline convention (RFC 6472 deprecates them).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bgp/rib.h"
#include "bgp/route.h"
#include "mrt/frame_index.h"
#include "mrt/wire.h"
#include "netbase/ip.h"
#include "netbase/prefix.h"

namespace manrs::mrt {

inline constexpr uint16_t kTypeTableDumpV2 = 13;
inline constexpr uint16_t kSubtypePeerIndexTable = 1;
inline constexpr uint16_t kSubtypeRibIpv4Unicast = 2;
inline constexpr uint16_t kSubtypeRibIpv6Unicast = 4;

// BGP path attribute type codes.
inline constexpr uint8_t kAttrOrigin = 1;
inline constexpr uint8_t kAttrAsPath = 2;
inline constexpr uint8_t kAttrNextHop = 3;

struct MrtHeader {
  uint32_t timestamp = 0;
  uint16_t type = 0;
  uint16_t subtype = 0;
  uint32_t length = 0;
};

struct PeerEntry {
  uint32_t bgp_id = 0;
  net::IpAddress address;
  net::Asn asn;
};

struct PeerIndexTable {
  uint32_t collector_bgp_id = 0;
  std::string view_name;
  std::vector<PeerEntry> peers;
};

struct RibEntryRecord {
  uint16_t peer_index = 0;
  uint32_t originated_time = 0;
  bgp::AsPath path;
};

struct RibRecord {
  uint32_t sequence = 0;
  net::Prefix prefix;
  std::vector<RibEntryRecord> entries;
};

/// Serializes a RIB snapshot to a TABLE_DUMP_V2 stream.
class TableDumpWriter {
 public:
  TableDumpWriter(std::ostream& out, uint32_t timestamp)
      : out_(out), timestamp_(timestamp) {}

  void write_peer_index(const PeerIndexTable& table);
  void write_rib_record(const RibRecord& record);

  /// Convenience: dump an entire bgp::Rib (peer table first, then one
  /// record per prefix in sorted order). Returns records written.
  size_t write_rib(const bgp::Rib& rib, const std::string& view_name);

 private:
  void write_record(uint16_t subtype, const ByteWriter& body);
  std::ostream& out_;
  uint32_t timestamp_;
};

/// Streaming TABLE_DUMP_V2 reader.
class TableDumpReader {
 public:
  explicit TableDumpReader(std::istream& in) : in_(in) {}

  /// Parsed record variants; exactly one engages per successful read.
  struct Record {
    MrtHeader header;
    std::optional<PeerIndexTable> peer_index;
    std::optional<RibRecord> rib;
  };

  /// Read the next record. Returns false on clean EOF. Records of
  /// unsupported type/subtype are skipped transparently; records that fail
  /// to parse are skipped and counted.
  bool next(Record& record);

  size_t skipped_records() const { return skipped_; }
  size_t bad_records() const { return bad_; }

  /// Reconstruct a bgp::Rib from in-memory dump bytes: frame-index scan
  /// (block-parallel on wide pools), zero-copy parallel body decode off
  /// `data`, then a serial stream-order fold. `data` is only read during
  /// the call; nothing is retained.
  static bgp::Rib read_rib(std::span<const uint8_t> data,
                           size_t* bad_records = nullptr);

  /// Convenience: reconstruct a bgp::Rib from an entire stream. Slurps
  /// the stream once (reserving from its seekable size) and delegates to
  /// the span overload.
  static bgp::Rib read_rib(std::istream& in, size_t* bad_records = nullptr);

  /// Reconstruct a bgp::Rib straight off a file: the dump bytes are
  /// mmap'd (util::MappedFile, with a buffered-read fallback) and decoded
  /// in place -- the zero-copy path a production collector uses for
  /// multi-GB dumps. Returns an empty Rib and sets *bad_records when the
  /// file cannot be opened.
  static bgp::Rib read_rib_file(const std::string& path,
                                size_t* bad_records = nullptr);

 private:
  std::istream& in_;
  std::vector<uint8_t> scratch_;  // grown once, reused per record body
  size_t skipped_ = 0;
  size_t bad_ = 0;
};

/// Zero-copy streaming iterator over TABLE_DUMP_V2 records in a framed
/// span: the record-at-a-time counterpart of read_rib(span), sharing its
/// parser (and therefore its exact skip/bad semantics) with the stream
/// reader. The span must stay alive for the scan's lifetime (it is a
/// view into a MappedFile or an in-memory dump).
class TableDumpScan {
 public:
  explicit TableDumpScan(std::span<const uint8_t> data);

  /// Next supported record in stream order; false at end of index.
  bool next(TableDumpReader::Record& record);

  size_t skipped_records() const { return skipped_; }
  size_t bad_records() const { return bad_; }

 private:
  std::span<const uint8_t> data_;
  FrameIndex index_;
  size_t next_ = 0;
  size_t skipped_ = 0;
  size_t bad_ = 0;
};

/// Encode/decode helpers shared with tests.
void encode_nlri(ByteWriter& w, const net::Prefix& prefix);
net::Prefix decode_nlri(ByteReader& r, net::Family family);
void encode_path_attributes(ByteWriter& w, const bgp::AsPath& path,
                            net::Family family);
bgp::AsPath decode_path_attributes(ByteReader& r, size_t attr_len);

}  // namespace manrs::mrt
