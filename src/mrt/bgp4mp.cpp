#include "mrt/bgp4mp.h"

#include <algorithm>
#include <array>
#include <istream>
#include <map>
#include <ostream>

#include "mrt/table_dump.h"  // shares the NLRI / path-attribute codecs
#include "util/bytes.h"

namespace manrs::mrt {

namespace {

constexpr uint16_t kAfiIpv4 = 1;
constexpr uint16_t kAfiIpv6 = 2;
constexpr uint8_t kSafiUnicast = 1;
constexpr uint8_t kAttrFlagOptional = 0x80;
constexpr uint8_t kAttrFlagExtendedLength = 0x10;

void write_address(ByteWriter& w, const net::IpAddress& addr) {
  if (addr.is_v4()) {
    w.u32(addr.v4_value());
  } else {
    w.u64(addr.hi());
    w.u64(addr.lo());
  }
}

net::IpAddress read_address(ByteReader& r, net::Family family) {
  if (family == net::Family::kIpv4) return net::IpAddress::v4(r.u32());
  uint64_t hi = r.u64();
  uint64_t lo = r.u64();
  return net::IpAddress::v6(hi, lo);
}

/// Encode the BGP UPDATE message body (without the 19-byte BGP header).
ByteWriter encode_update_body(const BgpUpdate& update) {
  std::vector<net::Prefix> v4_announced, v6_announced, v4_withdrawn,
      v6_withdrawn;
  for (const auto& p : update.announced) {
    (p.is_v4() ? v4_announced : v6_announced).push_back(p);
  }
  for (const auto& p : update.withdrawn) {
    (p.is_v4() ? v4_withdrawn : v6_withdrawn).push_back(p);
  }

  // Withdrawn routes (v4 only; v6 withdrawals ride in MP_UNREACH_NLRI).
  ByteWriter withdrawn;
  for (const auto& p : v4_withdrawn) encode_nlri(withdrawn, p);

  // Path attributes.
  ByteWriter attrs;
  if (!update.announced.empty()) {
    encode_path_attributes(attrs, update.path, net::Family::kIpv4);
  }
  if (!v6_announced.empty()) {
    ByteWriter mp;
    mp.u16(kAfiIpv6);
    mp.u8(kSafiUnicast);
    mp.u8(16);  // next-hop length
    mp.u64(0x20010db800000000ULL);  // 2001:db8::1 documentation next hop
    mp.u64(1);
    mp.u8(0);  // reserved
    for (const auto& p : v6_announced) encode_nlri(mp, p);
    attrs.u8(kAttrFlagOptional | kAttrFlagExtendedLength);
    attrs.u8(kAttrMpReachNlri);
    attrs.u16(static_cast<uint16_t>(mp.size()));
    attrs.bytes(mp);
  }
  if (!v6_withdrawn.empty()) {
    ByteWriter mp;
    mp.u16(kAfiIpv6);
    mp.u8(kSafiUnicast);
    for (const auto& p : v6_withdrawn) encode_nlri(mp, p);
    attrs.u8(kAttrFlagOptional | kAttrFlagExtendedLength);
    attrs.u8(kAttrMpUnreachNlri);
    attrs.u16(static_cast<uint16_t>(mp.size()));
    attrs.bytes(mp);
  }

  ByteWriter body;
  body.u16(static_cast<uint16_t>(withdrawn.size()));
  body.bytes(withdrawn);
  body.u16(static_cast<uint16_t>(attrs.size()));
  body.bytes(attrs);
  for (const auto& p : v4_announced) encode_nlri(body, p);
  return body;
}

/// Decode a BGP UPDATE body into a BgpUpdate. Every declared length
/// (message body, withdrawn block, attribute block, each attribute)
/// becomes a bounds-limited sub-cursor, so a lying length field raises a
/// ParseError instead of reading sibling data.
BgpUpdate decode_update_body(ByteReader& r, size_t body_len) {
  ByteReader body = r.sub(body_len);
  BgpUpdate update;

  // An UPDATE body starts with the two mandatory length fields.
  if (!body.can_read(4)) throw MrtError("truncated BGP UPDATE body");
  size_t withdrawn_len = body.u16();
  ByteReader withdrawn = body.sub(withdrawn_len);
  while (!withdrawn.done()) {
    update.withdrawn.push_back(decode_nlri(withdrawn, net::Family::kIpv4));
  }

  size_t attrs_len = body.u16();
  ByteReader attrs = body.sub(attrs_len);
  while (!attrs.done()) {
    uint8_t flags = attrs.u8();
    uint8_t type = attrs.u8();
    size_t len = (flags & kAttrFlagExtendedLength) ? attrs.u16() : attrs.u8();
    ByteReader attr = attrs.sub(len);
    if (type == kAttrAsPath) {
      std::vector<net::Asn> hops;
      while (!attr.done()) {
        uint8_t seg_type = attr.u8();
        uint8_t count = attr.u8();
        if (seg_type != 2) throw MrtError("non-sequence AS_PATH segment");
        for (uint8_t i = 0; i < count; ++i) hops.emplace_back(attr.u32());
      }
      update.path = bgp::AsPath(std::move(hops));
    } else if (type == kAttrMpReachNlri) {
      // AFI + SAFI + next-hop length precede the NLRI.
      if (!attr.can_read(4)) throw MrtError("truncated MP_REACH_NLRI");
      uint16_t afi = attr.u16();
      uint8_t safi = attr.u8();
      size_t nh_len = attr.u8();
      attr.skip(nh_len);
      attr.skip(1);  // reserved
      net::Family family =
          afi == kAfiIpv6 ? net::Family::kIpv6 : net::Family::kIpv4;
      if (safi != kSafiUnicast) continue;  // ignore non-unicast
      while (!attr.done()) {
        update.announced.push_back(decode_nlri(attr, family));
      }
    } else if (type == kAttrMpUnreachNlri) {
      if (!attr.can_read(3)) throw MrtError("truncated MP_UNREACH_NLRI");
      uint16_t afi = attr.u16();
      uint8_t safi = attr.u8();
      net::Family family =
          afi == kAfiIpv6 ? net::Family::kIpv6 : net::Family::kIpv4;
      if (safi != kSafiUnicast) continue;
      while (!attr.done()) {
        update.withdrawn.push_back(decode_nlri(attr, family));
      }
    }
  }

  while (!body.done()) {
    update.announced.push_back(decode_nlri(body, net::Family::kIpv4));
  }
  return update;
}

/// Decode a BGP4MP_MESSAGE_AS4 record body (everything after the MRT
/// common header). Returns false for non-UPDATE BGP messages (the caller
/// counts them as skipped); throws ParseError/MrtError on malformed
/// input. Shared verbatim by the stream reader and the zero-copy span
/// reader so the two cannot drift.
bool parse_bgp4mp_update(uint32_t timestamp, std::span<const uint8_t> body,
                         Bgp4mpRecord& record) {
  ByteReader r(body);
  record.timestamp = timestamp;
  record.peer_asn = net::Asn(r.u32());
  record.local_asn = net::Asn(r.u32());
  r.skip(2);  // interface index
  uint16_t afi = r.u16();
  net::Family family =
      afi == kAfiIpv6 ? net::Family::kIpv6 : net::Family::kIpv4;
  record.peer_ip = read_address(r, family);
  record.local_ip = read_address(r, family);
  // BGP header.
  r.skip(16);  // marker
  uint16_t msg_len = r.u16();
  uint8_t msg_type = r.u8();
  if (msg_type != kBgpMessageUpdate) return false;
  if (msg_len < 19) throw MrtError("BGP message length < 19");
  record.update = decode_update_body(r, msg_len - 19u);
  return true;
}

}  // namespace

void Bgp4mpWriter::write(const Bgp4mpRecord& record) {
  ByteWriter body;
  body.u32(record.peer_asn.value());
  body.u32(record.local_asn.value());
  body.u16(0);  // interface index
  body.u16(record.peer_ip.is_v4() ? kAfiIpv4 : kAfiIpv6);
  write_address(body, record.peer_ip);
  write_address(body, record.local_ip);

  ByteWriter update_body = encode_update_body(record.update);
  // BGP message header: marker (16 x 0xFF), length, type.
  for (int i = 0; i < 4; ++i) body.u32(0xFFFFFFFFu);
  body.u16(static_cast<uint16_t>(19 + update_body.size()));
  body.u8(kBgpMessageUpdate);
  body.bytes(update_body);

  ByteWriter header;
  header.u32(record.timestamp);
  header.u16(kTypeBgp4mp);
  header.u16(kSubtypeBgp4mpMessageAs4);
  header.u32(static_cast<uint32_t>(body.size()));
  util::write_bytes(out_, header.span());
  util::write_bytes(out_, body.span());
  ++records_;
}

bool Bgp4mpReader::next(Bgp4mpRecord& record) {
  while (true) {
    std::array<uint8_t, 12> header_raw{};
    size_t got = util::read_upto(in_, header_raw);
    if (got == 0) return false;
    if (got != header_raw.size()) {
      ++bad_;
      return false;
    }
    ByteReader hr(header_raw);
    if (!hr.can_read(header_raw.size())) {
      ++bad_;
      return false;
    }
    uint32_t timestamp = hr.u32();
    uint16_t type = hr.u16();
    uint16_t subtype = hr.u16();
    uint32_t length = hr.u32();

    if (length > kMaxRecordLength) {
      ++bad_;
      return false;
    }
    // The scratch buffer only ever grows: steady-state reads after the
    // largest record allocate nothing.
    if (scratch_.size() < length) scratch_.resize(length);
    std::span<uint8_t> body(scratch_.data(), length);
    if (!util::read_exact(in_, body)) {
      ++bad_;
      return false;
    }
    if (type != kTypeBgp4mp || subtype != kSubtypeBgp4mpMessageAs4) {
      ++skipped_;
      continue;
    }
    try {
      if (parse_bgp4mp_update(timestamp, body, record)) return true;
      ++skipped_;
    } catch (const util::ParseError&) {
      ++bad_;
    }
  }
}

UpdateStreamReader::UpdateStreamReader(std::span<const uint8_t> data)
    : data_(data), index_(scan_frames(data)) {
  bad_ = index_.bad;
}

bool UpdateStreamReader::next(Bgp4mpRecord& record) {
  while (next_ < index_.records.size()) {
    const RecordRef& ref = index_.records[next_++];
    if (ref.type != kTypeBgp4mp || ref.subtype != kSubtypeBgp4mpMessageAs4) {
      ++skipped_;
      continue;
    }
    try {
      if (parse_bgp4mp_update(ref.timestamp,
                              data_.subspan(ref.offset, ref.length), record)) {
        return true;
      }
      ++skipped_;
    } catch (const util::ParseError&) {
      ++bad_;
    }
  }
  return false;
}

size_t UpdateStreamReader::fold_into(bgp::Rib& rib) {
  rib.begin_delta();
  size_t applied = 0;
  Bgp4mpRecord record;
  while (next(record)) {
    const uint32_t peer = rib.find_or_add_peer(record.peer_asn);
    // RFC 4271 processing order: withdrawals first, then the announce
    // (an UPDATE may re-announce a prefix it also lists as withdrawn).
    for (const net::Prefix& p : record.update.withdrawn) {
      rib.erase(p, peer);
    }
    for (const net::Prefix& p : record.update.announced) {
      rib.insert(p, peer, record.update.path);
    }
    ++applied;
  }
  rib.finalize();
  return applied;
}

std::vector<BgpUpdate> diff_tables(
    const std::vector<bgp::PrefixOrigin>& before,
    const std::vector<bgp::PrefixOrigin>& after, net::Asn peer) {
  std::vector<bgp::PrefixOrigin> sorted_before = before;
  std::vector<bgp::PrefixOrigin> sorted_after = after;
  std::sort(sorted_before.begin(), sorted_before.end());
  std::sort(sorted_after.begin(), sorted_after.end());

  std::vector<bgp::PrefixOrigin> added, removed;
  std::set_difference(sorted_after.begin(), sorted_after.end(),
                      sorted_before.begin(), sorted_before.end(),
                      std::back_inserter(added));
  std::set_difference(sorted_before.begin(), sorted_before.end(),
                      sorted_after.begin(), sorted_after.end(),
                      std::back_inserter(removed));

  // Group announcements by origin (one UPDATE per origin, as a router
  // would emit for routes sharing a path); withdrawals go in one UPDATE.
  std::map<uint32_t, BgpUpdate> announces;
  for (const auto& po : added) {
    BgpUpdate& u = announces[po.origin.value()];
    if (u.path.empty()) {
      std::vector<net::Asn> hops;
      if (peer != po.origin) hops.push_back(peer);
      hops.push_back(po.origin);
      u.path = bgp::AsPath(std::move(hops));
    }
    u.announced.push_back(po.prefix);
  }
  std::vector<BgpUpdate> out;
  out.reserve(announces.size() + 1);
  if (!removed.empty()) {
    BgpUpdate withdrawal;
    for (const auto& po : removed) withdrawal.withdrawn.push_back(po.prefix);
    out.push_back(std::move(withdrawal));
  }
  for (auto& [_, update] : announces) out.push_back(std::move(update));
  return out;
}

std::vector<Bgp4mpRecord> diff_ribs(const bgp::Rib& before,
                                    const bgp::Rib& after,
                                    uint32_t timestamp) {
  // Synthetic session endpoints (TEST-NET-1); fold_into keys peers by AS,
  // so the addresses only need to be well-formed.
  const net::IpAddress peer_ip = net::IpAddress::v4(0xC0000201u);
  const net::IpAddress local_ip = net::IpAddress::v4(0xC0000202u);
  const net::Asn collector_asn(64512);  // private-use collector AS

  std::vector<Bgp4mpRecord> out;
  auto make_record = [&](net::Asn peer_asn) {
    Bgp4mpRecord rec;
    rec.timestamp = timestamp;
    rec.peer_asn = peer_asn;
    rec.local_asn = collector_asn;
    rec.peer_ip = peer_ip;
    rec.local_ip = local_ip;
    return rec;
  };

  // Withdrawals first (entries of `before` whose peer AS no longer has a
  // path for the prefix in `after`), matching diff_tables' ordering.
  before.for_each([&](const net::Prefix& prefix,
                      const std::vector<bgp::RibEntry>& entries) {
    const auto& after_entries = after.entries(prefix);
    for (const auto& e : entries) {
      const net::Asn asn = before.peer_asn(e.peer_index);
      bool still_present = false;
      for (const auto& ae : after_entries) {
        if (after.peer_asn(ae.peer_index) == asn) {
          still_present = true;
          break;
        }
      }
      if (!still_present) {
        Bgp4mpRecord rec = make_record(asn);
        rec.update.withdrawn.push_back(prefix);
        out.push_back(std::move(rec));
      }
    }
  });

  // Announces in `after`'s row-major order: one record per entry whose
  // path is new or changed relative to the same peer AS in `before`.
  after.for_each([&](const net::Prefix& prefix,
                     const std::vector<bgp::RibEntry>& entries) {
    const auto& before_entries = before.entries(prefix);
    for (const auto& e : entries) {
      const net::Asn asn = after.peer_asn(e.peer_index);
      bool unchanged = false;
      for (const auto& be : before_entries) {
        if (before.peer_asn(be.peer_index) == asn) {
          unchanged = be.path == e.path;
          break;
        }
      }
      if (!unchanged) {
        Bgp4mpRecord rec = make_record(asn);
        rec.update.path = e.path;
        rec.update.announced.push_back(prefix);
        out.push_back(std::move(rec));
      }
    }
  });
  return out;
}

}  // namespace manrs::mrt
