#include "mrt/table_dump.h"

#include <algorithm>
#include <array>
#include <istream>
#include <ostream>

#include "util/bytes.h"
#include "util/mapped_file.h"
#include "util/parallel.h"

namespace manrs::mrt {

namespace {

// Peer-type flag bits (RFC 6396 §4.3.1).
constexpr uint8_t kPeerFlagV6 = 0x01;
constexpr uint8_t kPeerFlagAs4 = 0x02;

// BGP attribute flag bits.
constexpr uint8_t kAttrFlagTransitive = 0x40;
constexpr uint8_t kAttrFlagExtendedLength = 0x10;

constexpr uint8_t kAsPathSegmentSet = 1;
constexpr uint8_t kAsPathSegmentSequence = 2;

void write_address(ByteWriter& w, const net::IpAddress& addr) {
  if (addr.is_v4()) {
    w.u32(addr.v4_value());
  } else {
    w.u64(addr.hi());
    w.u64(addr.lo());
  }
}

net::IpAddress read_address(ByteReader& r, net::Family family) {
  if (family == net::Family::kIpv4) return net::IpAddress::v4(r.u32());
  uint64_t hi = r.u64();
  uint64_t lo = r.u64();
  return net::IpAddress::v6(hi, lo);
}

/// Parse one TABLE_DUMP_V2 record body into `record`. Returns true when
/// the subtype is supported (record engaged), false when it should be
/// skipped. Throws util::ParseError / MrtError on malformed bodies. Pure
/// function of (header, body) -- the streaming reader and the parallel
/// whole-dump decoder share it, so both produce identical records.
bool parse_table_dump_body(const MrtHeader& header,
                           std::span<const uint8_t> body,
                           TableDumpReader::Record& record) {
  record.header = header;
  record.peer_index.reset();
  record.rib.reset();
  ByteReader r(body);
  if (header.subtype == kSubtypePeerIndexTable) {
    PeerIndexTable table;
    table.collector_bgp_id = r.u32();
    size_t name_len = r.u16();
    table.view_name.assign(r.ascii(name_len));
    size_t peer_count = r.u16();
    // A peer entry is at least 11 bytes; bounding the reserve by the
    // remaining body keeps a lying count from allocating ahead of the
    // truncation error.
    table.peers.reserve(std::min(peer_count, r.remaining() / 11));
    for (size_t i = 0; i < peer_count; ++i) {
      uint8_t flags = r.u8();
      PeerEntry peer;
      peer.bgp_id = r.u32();
      peer.address = read_address(
          r, (flags & kPeerFlagV6) ? net::Family::kIpv6 : net::Family::kIpv4);
      peer.asn = net::Asn((flags & kPeerFlagAs4)
                              ? r.u32()
                              : static_cast<uint32_t>(r.u16()));
      table.peers.push_back(peer);
    }
    record.peer_index = std::move(table);
    return true;
  }
  if (header.subtype == kSubtypeRibIpv4Unicast ||
      header.subtype == kSubtypeRibIpv6Unicast) {
    RibRecord rib;
    rib.sequence = r.u32();
    rib.prefix = decode_nlri(r, header.subtype == kSubtypeRibIpv4Unicast
                                    ? net::Family::kIpv4
                                    : net::Family::kIpv6);
    size_t entry_count = r.u16();
    // An entry is at least 8 bytes of fixed fields; same bounded-reserve
    // rationale as the peer table above. Exact reserves matter here: the
    // growth reallocations were a measurable slice of whole-dump decode.
    rib.entries.reserve(std::min(entry_count, r.remaining() / 8));
    for (size_t i = 0; i < entry_count; ++i) {
      RibEntryRecord entry;
      entry.peer_index = r.u16();
      entry.originated_time = r.u32();
      size_t attr_len = r.u16();
      entry.path = decode_path_attributes(r, attr_len);
      rib.entries.push_back(std::move(entry));
    }
    record.rib = std::move(rib);
    return true;
  }
  return false;
}

/// Replace-per-peer in stream order, or append.
void apply_fold_entry(std::vector<bgp::RibEntry>& entries, uint32_t peer,
                      bgp::AsPath&& path) {
  for (auto& have : entries) {
    if (have.peer_index == peer) {
      have.path = std::move(path);
      return;
    }
  }
  entries.push_back(bgp::RibEntry{peer, std::move(path)});
}

/// Stream-order fold of parsed TABLE_DUMP_V2 records into a Rib: one
/// RibRow per RIB record (TABLE_DUMP_V2 groups a prefix's entries into a
/// single record, so sorting rows -- 150k for a full dump -- is far
/// cheaper than staging and sorting every entry through Rib::insert +
/// finalize), with PEER_INDEX_TABLE records re-mapping subsequent
/// records' peer indices, an order-dependent rule. Both decode paths
/// (streaming serial, slot-parallel) feed the same fold, so they cannot
/// diverge.
class RibFold {
 public:
  /// Consume one parsed record (moves the entry paths out of it).
  void add(TableDumpReader::Record& record) {
    if (record.peer_index) {
      peer_map_.clear();
      for (const auto& peer : record.peer_index->peers) {
        peer_map_.push_back(rib_.add_peer(peer.asn));
      }
    } else if (record.rib) {
      bgp::RibRow row;
      row.prefix = record.rib->prefix;
      row.entries.reserve(record.rib->entries.size());
      for (auto& entry : record.rib->entries) {
        uint32_t peer = entry.peer_index < peer_map_.size()
                            ? peer_map_[entry.peer_index]
                            : entry.peer_index;
        apply_fold_entry(row.entries, peer, std::move(entry.path));
      }
      if (!row.entries.empty()) rows_.push_back(std::move(row));
    }
  }

  bgp::Rib finish() {
    // Our own dumps emit rows in sorted order, so the stable sort is a
    // single verification pass; foreign dumps may repeat or reorder
    // prefixes, and duplicate rows merge in stream order below.
    std::stable_sort(rows_.begin(), rows_.end(),
                     [](const bgp::RibRow& a, const bgp::RibRow& b) {
                       return a.prefix < b.prefix;
                     });
    std::vector<bgp::RibRow> merged;
    merged.reserve(rows_.size());
    for (auto& row : rows_) {
      if (!merged.empty() && merged.back().prefix == row.prefix) {
        for (auto& e : row.entries) {
          apply_fold_entry(merged.back().entries, e.peer_index,
                           std::move(e.path));
        }
      } else {
        merged.push_back(std::move(row));
      }
    }
    rib_.adopt_rows(std::move(merged));
    return std::move(rib_);
  }

 private:
  bgp::Rib rib_;
  std::vector<uint32_t> peer_map_;  // dump peer index -> rib peer index
  std::vector<bgp::RibRow> rows_;
};

}  // namespace

void encode_nlri(ByteWriter& w, const net::Prefix& prefix) {
  w.u8(static_cast<uint8_t>(prefix.length()));
  size_t nbytes = (prefix.length() + 7) / 8;
  // The address value is left-aligned in the 128-bit words for both
  // families, so the first `nbytes` bytes of the big-endian encoding are
  // exactly the NLRI bytes.
  std::array<uint8_t, 16> raw{};
  uint64_t hi = prefix.address().hi();
  uint64_t lo = prefix.address().lo();
  for (int i = 0; i < 8; ++i) {
    raw[static_cast<size_t>(i)] = static_cast<uint8_t>(hi >> (56 - 8 * i));
    raw[static_cast<size_t>(8 + i)] =
        static_cast<uint8_t>(lo >> (56 - 8 * i));
  }
  w.bytes(std::span<const uint8_t>(raw.data(), nbytes));
}

net::Prefix decode_nlri(ByteReader& r, net::Family family) {
  unsigned len = r.u8();
  if (len > net::family_bits(family)) {
    throw MrtError("NLRI length " + std::to_string(len) +
                   " exceeds family width");
  }
  size_t nbytes = (len + 7) / 8;
  auto raw = r.bytes(nbytes);
  uint64_t hi = 0, lo = 0;
  for (size_t i = 0; i < nbytes && i < 8; ++i) {
    hi |= static_cast<uint64_t>(raw[i]) << (56 - 8 * i);
  }
  for (size_t i = 8; i < nbytes; ++i) {
    lo |= static_cast<uint64_t>(raw[i]) << (56 - 8 * (i - 8));
  }
  net::IpAddress addr = family == net::Family::kIpv4
                            ? net::IpAddress::v4(static_cast<uint32_t>(hi >> 32))
                            : net::IpAddress::v6(hi, lo);
  return net::Prefix(addr, len);
}

void encode_path_attributes(ByteWriter& w, const bgp::AsPath& path,
                            net::Family family) {
  // ORIGIN: IGP.
  w.u8(kAttrFlagTransitive);
  w.u8(kAttrOrigin);
  w.u8(1);
  w.u8(0);

  // AS_PATH: one AS_SEQUENCE segment, 4-byte ASNs (AS4 peers).
  {
    ByteWriter seg;
    seg.u8(kAsPathSegmentSequence);
    seg.u8(static_cast<uint8_t>(path.hops().size()));
    for (net::Asn asn : path.hops()) seg.u32(asn.value());
    w.u8(kAttrFlagTransitive | kAttrFlagExtendedLength);
    w.u8(kAttrAsPath);
    w.u16(static_cast<uint16_t>(seg.size()));
    w.bytes(seg);
  }

  // NEXT_HOP for IPv4 (IPv6 next hops ride in MP_REACH_NLRI in real BGP;
  // RIB dumps omit it for v6 here, which decoders must tolerate anyway).
  if (family == net::Family::kIpv4) {
    w.u8(kAttrFlagTransitive);
    w.u8(kAttrNextHop);
    w.u8(4);
    w.u32(0xC0000201);  // 192.0.2.1, a documentation next hop
  }
}

bgp::AsPath decode_path_attributes(ByteReader& r, size_t attr_len) {
  // The attribute block parses against its declared extent only: sub()
  // bounds-checks attr_len against the record and each attribute's
  // declared length against the block, so neither can overrun siblings.
  ByteReader block = r.sub(attr_len);
  bgp::AsPath path;
  while (!block.done()) {
    uint8_t flags = block.u8();
    uint8_t type = block.u8();
    size_t len =
        (flags & kAttrFlagExtendedLength) ? block.u16() : block.u8();
    ByteReader attr = block.sub(len);
    if (type == kAttrAsPath) {
      std::vector<net::Asn> hops;
      while (!attr.done()) {
        uint8_t seg_type = attr.u8();
        uint8_t count = attr.u8();
        if (seg_type == kAsPathSegmentSet) {
          throw MrtError("AS_SET segment (deprecated, RFC 6472)");
        }
        if (seg_type != kAsPathSegmentSequence) {
          throw MrtError("unknown AS_PATH segment type " +
                         std::to_string(seg_type));
        }
        // One bounds check for the whole segment instead of one per hop:
        // this loop runs once per hop of every entry in a dump, so the
        // per-read need() overhead is measurable at full scale.
        auto raw = attr.bytes(static_cast<size_t>(count) * 4);
        hops.reserve(hops.size() + count);
        for (size_t i = 0; i < raw.size(); i += 4) {
          hops.emplace_back(static_cast<uint32_t>(raw[i]) << 24 |
                            static_cast<uint32_t>(raw[i + 1]) << 16 |
                            static_cast<uint32_t>(raw[i + 2]) << 8 |
                            static_cast<uint32_t>(raw[i + 3]));
        }
      }
      path = bgp::AsPath(std::move(hops));
    }
  }
  return path;
}

void TableDumpWriter::write_record(uint16_t subtype, const ByteWriter& body) {
  ByteWriter header;
  header.u32(timestamp_);
  header.u16(kTypeTableDumpV2);
  header.u16(subtype);
  header.u32(static_cast<uint32_t>(body.size()));
  util::write_bytes(out_, header.span());
  util::write_bytes(out_, body.span());
}

void TableDumpWriter::write_peer_index(const PeerIndexTable& table) {
  ByteWriter body;
  body.u32(table.collector_bgp_id);
  body.u16(static_cast<uint16_t>(table.view_name.size()));
  body.ascii(table.view_name);
  body.u16(static_cast<uint16_t>(table.peers.size()));
  for (const auto& peer : table.peers) {
    uint8_t flags = kPeerFlagAs4;
    if (peer.address.is_v6()) flags |= kPeerFlagV6;
    body.u8(flags);
    body.u32(peer.bgp_id);
    write_address(body, peer.address);
    body.u32(peer.asn.value());
  }
  write_record(kSubtypePeerIndexTable, body);
}

void TableDumpWriter::write_rib_record(const RibRecord& record) {
  ByteWriter body;
  body.u32(record.sequence);
  encode_nlri(body, record.prefix);
  body.u16(static_cast<uint16_t>(record.entries.size()));
  for (const auto& entry : record.entries) {
    body.u16(entry.peer_index);
    body.u32(entry.originated_time);
    ByteWriter attrs;
    encode_path_attributes(attrs, entry.path, record.prefix.family());
    body.u16(static_cast<uint16_t>(attrs.size()));
    body.bytes(attrs);
  }
  uint16_t subtype = record.prefix.is_v4() ? kSubtypeRibIpv4Unicast
                                           : kSubtypeRibIpv6Unicast;
  write_record(subtype, body);
}

size_t TableDumpWriter::write_rib(const bgp::Rib& rib,
                                  const std::string& view_name) {
  PeerIndexTable table;
  table.collector_bgp_id = 0x0A000001;  // 10.0.0.1
  table.view_name = view_name;
  for (uint32_t i = 0; i < rib.peer_count(); ++i) {
    PeerEntry peer;
    peer.bgp_id = 0x0A000100 + i;
    peer.address = net::IpAddress::v4(0x0A000100 + i);
    peer.asn = rib.peer_asn(i);
    table.peers.push_back(peer);
  }
  write_peer_index(table);

  size_t records = 0;
  uint32_t sequence = 0;
  rib.for_each([&](const net::Prefix& prefix,
                   const std::vector<bgp::RibEntry>& entries) {
    RibRecord record;
    record.sequence = sequence++;
    record.prefix = prefix;
    for (const auto& e : entries) {
      record.entries.push_back(RibEntryRecord{
          static_cast<uint16_t>(e.peer_index), timestamp_, e.path});
    }
    write_rib_record(record);
    ++records;
  });
  return records;
}

bool TableDumpReader::next(Record& record) {
  while (true) {
    std::array<uint8_t, 12> header_raw{};
    size_t got = util::read_upto(in_, header_raw);
    if (got == 0) return false;  // clean EOF
    if (got != header_raw.size()) {
      ++bad_;
      return false;  // truncated header: nothing more to salvage
    }
    ByteReader hr(header_raw);
    if (!hr.can_read(header_raw.size())) {
      ++bad_;
      return false;
    }
    MrtHeader header;
    header.timestamp = hr.u32();
    header.type = hr.u16();
    header.subtype = hr.u16();
    header.length = hr.u32();

    // Reject absurd declared lengths before allocating: resynchronising
    // after a corrupt length field is hopeless, so this ends the scan.
    if (header.length > kMaxRecordLength) {
      ++bad_;
      return false;
    }
    // The scratch buffer only ever grows: steady-state reads after the
    // largest record allocate nothing.
    if (scratch_.size() < header.length) scratch_.resize(header.length);
    std::span<uint8_t> body(scratch_.data(), header.length);
    if (!util::read_exact(in_, body)) {
      ++bad_;
      return false;
    }

    if (header.type != kTypeTableDumpV2) {
      ++skipped_;
      continue;
    }

    try {
      if (parse_table_dump_body(header, body, record)) return true;
      ++skipped_;
    } catch (const util::ParseError&) {
      ++bad_;
    }
  }
}

TableDumpScan::TableDumpScan(std::span<const uint8_t> data)
    : data_(data), index_(scan_frames(data)) {
  bad_ = index_.bad;
}

bool TableDumpScan::next(TableDumpReader::Record& record) {
  while (next_ < index_.records.size()) {
    const RecordRef& ref = index_.records[next_++];
    if (ref.type != kTypeTableDumpV2) {
      ++skipped_;
      continue;
    }
    MrtHeader header;
    header.timestamp = ref.timestamp;
    header.type = ref.type;
    header.subtype = ref.subtype;
    header.length = ref.length;
    try {
      if (parse_table_dump_body(header, data_.subspan(ref.offset, ref.length),
                                record)) {
        return true;
      }
      ++skipped_;
    } catch (const util::ParseError&) {
      ++bad_;
    }
  }
  return false;
}

bgp::Rib TableDumpReader::read_rib(std::span<const uint8_t> data,
                                   size_t* bad_records) {
  // Whole-dump decode in three phases, mirroring the streaming reader's
  // semantics exactly:
  //   1. frame-index scan: split the bytes at record boundaries (headers
  //      are the only place lengths live; the scan touches 12 bytes per
  //      record and goes block-parallel on wide pools);
  //   2. parse record bodies -- the expensive part -- concurrently into
  //      index-addressed slots, each body a zero-copy span off `data`;
  //   3. fold the slots into the Rib serially, in stream order, so the
  //      result is byte-identical to a serial decode (peer-table records
  //      re-map subsequent RIB records' peer indices, an order-dependent
  //      rule the fold preserves).
  const FrameIndex index = scan_frames_parallel(data);
  size_t bad = index.bad;
  RibFold fold;

  if (util::thread_count() <= 1) {
    // Serial fast path: parse and fold record-at-a-time through one
    // reused Record. The slot buffer below keeps every parsed record
    // (millions of entry-path vectors) alive until the fold drains it,
    // which costs a measurable allocator/cache penalty that buys nothing
    // without workers -- streaming keeps the allocator on its
    // same-size-block fast path and the working set one record deep.
    Record record;
    for (const RecordRef& ref : index.records) {
      if (ref.type != kTypeTableDumpV2) continue;  // skipped, not an error
      MrtHeader header{ref.timestamp, ref.type, ref.subtype, ref.length};
      try {
        if (parse_table_dump_body(header, data.subspan(ref.offset, ref.length),
                                  record)) {
          fold.add(record);
        }
      } catch (const util::ParseError&) {
        ++bad;
      }
    }
    if (bad_records) *bad_records = bad;
    return fold.finish();
  }

  std::vector<const RecordRef*> slices;
  slices.reserve(index.records.size());
  for (const RecordRef& ref : index.records) {
    if (ref.type != kTypeTableDumpV2) continue;  // skipped, not an error
    slices.push_back(&ref);
  }

  struct Parsed {
    Record record;
    bool engaged = false;
    bool failed = false;
  };
  std::vector<Parsed> parsed(slices.size());
  util::parallel_for(slices.size(), [&](size_t i) {
    const RecordRef& ref = *slices[i];
    MrtHeader header{ref.timestamp, ref.type, ref.subtype, ref.length};
    try {
      parsed[i].engaged = parse_table_dump_body(
          header, data.subspan(ref.offset, ref.length), parsed[i].record);
    } catch (const util::ParseError&) {
      parsed[i].failed = true;
    }
  });

  for (auto& p : parsed) {
    if (p.failed) {
      ++bad;
      continue;
    }
    if (p.engaged) fold.add(p.record);
  }
  if (bad_records) *bad_records = bad;
  return fold.finish();
}

bgp::Rib TableDumpReader::read_rib(std::istream& in, size_t* bad_records) {
  std::vector<uint8_t> data;
  util::read_all(in, data);
  return read_rib(std::span<const uint8_t>(data), bad_records);
}

bgp::Rib TableDumpReader::read_rib_file(const std::string& path,
                                        size_t* bad_records) {
  util::MappedFile file;
  if (!file.open(path)) {
    if (bad_records) *bad_records = 1;
    return bgp::Rib{};
  }
  // The mapping outlives the call: every body span handed to the decode
  // workers views `file.bytes()`, and nothing escapes read_rib(span).
  return read_rib(file.bytes(), bad_records);
}

}  // namespace manrs::mrt
