#include "mrt/frame_index.h"

#include <algorithm>

#include "mrt/wire.h"
#include "util/parallel.h"

namespace manrs::mrt {

namespace {

/// Decode the 12-byte common header at absolute offset `off`. Returns
/// false when fewer than 12 bytes remain (a truncated header).
bool read_header(std::span<const uint8_t> data, uint64_t off,
                 RecordRef& ref) {
  ByteReader cursor(data.subspan(off));
  if (!cursor.can_read(12)) return false;
  ref.timestamp = cursor.u32();
  ref.type = cursor.u16();
  ref.subtype = cursor.u16();
  ref.length = cursor.u32();
  ref.offset = off + 12;
  return true;
}

/// True when the header at `off` starts a chain of `depth` in-bounds
/// headers (or reaches clean EOF first). Used only to pick speculative
/// anchors -- the stitch pass is what makes the result authoritative.
bool plausible_chain(std::span<const uint8_t> data, uint64_t off,
                     int depth) {
  uint64_t cur = off;
  for (int i = 0; i < depth; ++i) {
    if (cur == data.size()) return true;  // clean EOF ends the chain
    RecordRef ref;
    if (!read_header(data, cur, ref)) return false;
    if (ref.length > kMaxRecordLength) return false;
    if (ref.offset + ref.length > data.size()) return false;
    cur = ref.offset + ref.length;
  }
  return true;
}

/// Walk the chain from `cur` until the first record starting at or
/// after `end`, appending refs for every record that starts before
/// `end`. Returns the handoff offset; sets `corrupt` when the chain
/// breaks (truncated header, oversized length, body past EOF) -- the
/// handoff is then the corrupt header's offset.
uint64_t chain_block(std::span<const uint8_t> data, uint64_t cur,
                     uint64_t end, std::vector<RecordRef>& refs,
                     bool& corrupt) {
  while (cur < end) {
    RecordRef ref;
    if (!read_header(data, cur, ref) || ref.length > kMaxRecordLength ||
        ref.offset + ref.length > data.size()) {
      corrupt = true;
      return cur;
    }
    refs.push_back(ref);
    cur = ref.offset + ref.length;
  }
  return cur;
}

}  // namespace

FrameIndex scan_frames(std::span<const uint8_t> data) {
  FrameIndex out;
  bool corrupt = false;
  out.scanned_bytes = chain_block(data, 0, data.size(), out.records, corrupt);
  if (corrupt) {
    out.bad = 1;
    out.truncated = true;
  }
  return out;
}

FrameIndex scan_frames_parallel(std::span<const uint8_t> data,
                                size_t block_hint) {
  const uint64_t n = data.size();
  const size_t threads = util::thread_count();
  // Auto block size: a few blocks per worker for load balance, but
  // never so small that probing dominates the scan.
  size_t block = block_hint != 0
                     ? block_hint
                     : std::max<size_t>(n / (threads * 4 + 1), 4u << 20);
  if (threads <= 1 || block >= n || block < 13) return scan_frames(data);
  const size_t nblocks = static_cast<size_t>((n + block - 1) / block);

  struct BlockScan {
    bool anchored = false;
    uint64_t anchor = 0;
    uint64_t handoff = 0;
    bool corrupt = false;
    std::vector<RecordRef> refs;
  };
  std::vector<BlockScan> scans(nblocks);
  util::parallel_for(nblocks, [&](size_t b) {
    BlockScan& scan = scans[b];
    const uint64_t start = static_cast<uint64_t>(b) * block;
    const uint64_t end = std::min<uint64_t>(start + block, n);
    if (b == 0) {
      scan.anchored = true;  // offset 0 is the one known-true anchor
    } else {
      // Probe for the first plausible header in the block. A false
      // anchor (record payload that happens to look like a header
      // chain) is caught by the stitch pass below, never trusted.
      for (uint64_t o = start; o < end; ++o) {
        if (plausible_chain(data, o, 3)) {
          scan.anchored = true;
          scan.anchor = o;
          break;
        }
      }
      if (!scan.anchored) return;  // record spans the whole block
    }
    scan.handoff =
        chain_block(data, scan.anchor, end, scan.refs, scan.corrupt);
  });

  // Serial stitch: accept a block's speculative frames only when its
  // anchor is exactly where the verified chain hands off; otherwise
  // re-frame the block from the verified position. Induction from
  // offset 0 makes the accepted chain identical to the serial scan.
  FrameIndex out;
  uint64_t cur = 0;
  for (size_t b = 0; b < nblocks; ++b) {
    const uint64_t end = std::min<uint64_t>((static_cast<uint64_t>(b) + 1) *
                                                block, n);
    bool corrupt = false;
    if (scans[b].anchored && scans[b].anchor == cur) {
      out.records.insert(out.records.end(),
                         std::make_move_iterator(scans[b].refs.begin()),
                         std::make_move_iterator(scans[b].refs.end()));
      cur = scans[b].handoff;
      corrupt = scans[b].corrupt;
    } else {
      cur = chain_block(data, cur, end, out.records, corrupt);
    }
    if (corrupt) {
      out.bad = 1;
      out.truncated = true;
      break;
    }
  }
  out.scanned_bytes = cur;
  return out;
}

}  // namespace manrs::mrt
