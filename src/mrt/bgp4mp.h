// MRT BGP4MP update records (RFC 6396 §4.4) and the BGP UPDATE message
// codec (RFC 4271 §4.3, with RFC 4760 multiprotocol NLRI for IPv6).
//
// RouteViews and RIS publish two product families: RIB snapshots
// (table_dump.h) and *update streams* in BGP4MP format. The incident
// analysis (core/incidents.h, the paper's §12 future work) consumes update
// streams, so the codec implements the real wire format:
//
//   MRT header | peer AS | local AS | ifindex | AFI | peer IP | local IP |
//   BGP message (16-byte marker, length, type=UPDATE, withdrawn routes,
//   path attributes, NLRI)
//
// IPv4 routes ride in the classic UPDATE fields; IPv6 routes ride in
// MP_REACH_NLRI / MP_UNREACH_NLRI attributes, exactly as on the wire.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "bgp/rib.h"
#include "bgp/route.h"
#include "mrt/frame_index.h"
#include "mrt/wire.h"
#include "netbase/ip.h"

namespace manrs::mrt {

inline constexpr uint16_t kTypeBgp4mp = 16;
inline constexpr uint16_t kSubtypeBgp4mpMessageAs4 = 4;

inline constexpr uint8_t kBgpMessageUpdate = 2;
inline constexpr uint8_t kAttrMpReachNlri = 14;
inline constexpr uint8_t kAttrMpUnreachNlri = 15;

/// One BGP UPDATE, family-merged: `announced` prefixes share the given AS
/// path; `withdrawn` prefixes are being removed.
struct BgpUpdate {
  std::vector<net::Prefix> announced;
  std::vector<net::Prefix> withdrawn;
  bgp::AsPath path;  // must be non-empty when `announced` is non-empty

  bool empty() const { return announced.empty() && withdrawn.empty(); }
};

/// A BGP4MP_MESSAGE_AS4 record.
struct Bgp4mpRecord {
  uint32_t timestamp = 0;
  net::Asn peer_asn;
  net::Asn local_asn;
  net::IpAddress peer_ip;   // also selects the header address family
  net::IpAddress local_ip;  // must match peer_ip's family
  BgpUpdate update;
};

/// Serialize BGP4MP update records to a stream.
class Bgp4mpWriter {
 public:
  explicit Bgp4mpWriter(std::ostream& out) : out_(out) {}

  /// Writes one record; v4 and v6 prefixes in the update are split into
  /// the appropriate wire encodings automatically.
  void write(const Bgp4mpRecord& record);

  size_t records_written() const { return records_; }

 private:
  std::ostream& out_;
  size_t records_ = 0;
};

/// Streaming BGP4MP reader. Unsupported MRT types/subtypes and non-UPDATE
/// BGP messages are skipped; malformed records are counted and skipped.
class Bgp4mpReader {
 public:
  explicit Bgp4mpReader(std::istream& in) : in_(in) {}

  bool next(Bgp4mpRecord& record);

  size_t skipped_records() const { return skipped_; }
  size_t bad_records() const { return bad_; }

 private:
  std::istream& in_;
  std::vector<uint8_t> scratch_;  // grown once, reused per record body
  size_t skipped_ = 0;
  size_t bad_ = 0;
};

/// Zero-copy streaming reader over BGP4MP update records in a framed
/// span, plus the fold that applies them to a live RIB. The span must
/// stay alive for the reader's lifetime (it is a view into a
/// util::MappedFile or an in-memory stream); record bodies are decoded
/// in place, never copied.
///
/// Skip/bad semantics match Bgp4mpReader: unsupported MRT types and
/// non-UPDATE BGP messages are skipped, malformed records counted.
class UpdateStreamReader {
 public:
  explicit UpdateStreamReader(std::span<const uint8_t> data);

  /// Next UPDATE record in stream order; false at end of stream.
  bool next(Bgp4mpRecord& record);

  /// Fold every remaining update into `rib`, in stream order: announced
  /// prefixes replace the peer's path (peers are resolved by AS via
  /// Rib::find_or_add_peer), withdrawn prefixes erase it. Stages through
  /// begin_delta()/finalize() once, so folding a delta stream onto a RIB
  /// snapshot costs one merge. Returns the number of updates applied.
  size_t fold_into(bgp::Rib& rib);

  size_t skipped_records() const { return skipped_; }
  size_t bad_records() const { return bad_; }

 private:
  std::span<const uint8_t> data_;
  FrameIndex index_;
  size_t next_ = 0;
  size_t skipped_ = 0;
  size_t bad_ = 0;
};

/// Diff two routing tables into per-origin UPDATE messages: prefixes in
/// `after` but not `before` are announced (grouped by origin, with a
/// synthetic path [peer, origin] unless peer == origin), prefixes only in
/// `before` are withdrawn. Deterministic order.
std::vector<BgpUpdate> diff_tables(
    const std::vector<bgp::PrefixOrigin>& before,
    const std::vector<bgp::PrefixOrigin>& after, net::Asn peer);

/// Diff two RIBs into a BGP4MP update stream: folding the result into a
/// copy of `before` (UpdateStreamReader::fold_into) reproduces `after`.
/// Withdrawal records come first (entries of `before` absent from
/// `after`), then one announce record per entry of `after` whose path
/// differs from `before`, emitted in `after`'s row-major order -- so an
/// empty `before` yields announces in exactly `after`'s iteration order.
std::vector<Bgp4mpRecord> diff_ribs(const bgp::Rib& before,
                                    const bgp::Rib& after,
                                    uint32_t timestamp);

}  // namespace manrs::mrt
