// Wire-format primitives for the MRT codec.
//
// The actual bounds-checked reader/writer machinery lives in
// util/bytes.h (ByteCursor / ByteBuf); this header binds the MRT-local
// names and the MRT error type. ByteReader decodes with hard bounds
// checks and throws on truncation, which the record readers convert into
// a per-record parse failure (a corrupt record must not take down a whole
// dump scan).
#pragma once

#include <string>

#include "util/bytes.h"

namespace manrs::mrt {

/// MRT-specific parse failure. Derives from util::ParseError so that a
/// record-level catch of ParseError also covers truncation errors thrown
/// by the cursor layer itself.
class MrtError : public util::ParseError {
 public:
  explicit MrtError(const std::string& what) : util::ParseError(what) {}
};

using ByteReader = util::ByteCursor;
using ByteWriter = util::ByteBuf;

/// Upper bound on a declared MRT record body length. RFC 6396 puts no
/// limit in the header, but a real TABLE_DUMP_V2 / BGP4MP record is tens
/// of kilobytes at most; a multi-megabyte declared length is either a
/// corrupt header or a decompression bomb, and blindly allocating it
/// turns one flipped bit into an OOM. Oversized records are rejected as
/// parse errors before any allocation.
inline constexpr uint32_t kMaxRecordLength = 16u * 1024 * 1024;

}  // namespace manrs::mrt
