// Big-endian wire-format primitives for the MRT codec.
//
// ByteWriter accumulates into a byte vector; ByteReader decodes with hard
// bounds checks and throws MrtError on truncation, which the record reader
// converts into a per-record parse failure (a corrupt record must not take
// down a whole dump scan).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace manrs::mrt {

class MrtError : public std::runtime_error {
 public:
  explicit MrtError(const std::string& what) : std::runtime_error(what) {}
};

class ByteWriter {
 public:
  void u8(uint8_t v) { buf_.push_back(v); }
  void u16(uint16_t v) {
    buf_.push_back(static_cast<uint8_t>(v >> 8));
    buf_.push_back(static_cast<uint8_t>(v));
  }
  void u32(uint32_t v) {
    buf_.push_back(static_cast<uint8_t>(v >> 24));
    buf_.push_back(static_cast<uint8_t>(v >> 16));
    buf_.push_back(static_cast<uint8_t>(v >> 8));
    buf_.push_back(static_cast<uint8_t>(v));
  }
  void u64(uint64_t v) {
    u32(static_cast<uint32_t>(v >> 32));
    u32(static_cast<uint32_t>(v));
  }
  void bytes(std::span<const uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  void bytes(const ByteWriter& other) {
    buf_.insert(buf_.end(), other.buf_.begin(), other.buf_.end());
  }

  /// Overwrite a previously written 16-bit slot (for back-patched length
  /// fields).
  void patch_u16(size_t offset, uint16_t v) {
    buf_[offset] = static_cast<uint8_t>(v >> 8);
    buf_[offset + 1] = static_cast<uint8_t>(v);
  }

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  size_t position() const { return pos_; }

  uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  uint16_t u16() {
    need(2);
    uint16_t v = static_cast<uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  uint32_t u32() {
    need(4);
    uint32_t v = static_cast<uint32_t>(data_[pos_]) << 24 |
                 static_cast<uint32_t>(data_[pos_ + 1]) << 16 |
                 static_cast<uint32_t>(data_[pos_ + 2]) << 8 |
                 static_cast<uint32_t>(data_[pos_ + 3]);
    pos_ += 4;
    return v;
  }
  uint64_t u64() {
    uint64_t hi = u32();
    return (hi << 32) | u32();
  }
  std::span<const uint8_t> bytes(size_t n) {
    need(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  void skip(size_t n) {
    need(n);
    pos_ += n;
  }

 private:
  void need(size_t n) const {
    if (data_.size() - pos_ < n) {
      throw MrtError("truncated record: need " + std::to_string(n) +
                     " bytes, have " + std::to_string(data_.size() - pos_));
    }
  }
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace manrs::mrt
