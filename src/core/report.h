// Ecosystem-level reports built on the conformance engine.
//
// Three consumers:
//   * registration completeness (Finding 7.0): how much of each MANRS
//     organization's AS footprint is actually registered in MANRS;
//   * case-study analysis (Table 1 / §8.4): for an unconformant
//     organization, break down its invalid prefix-origins by the
//     relationship between the BGP origin and the registered origin;
//   * the member conformance report -- the ISOC-style private monthly
//     report (§1, §10), reproduced as a printable per-participant
//     statement.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "astopo/as2org.h"
#include "astopo/graph.h"
#include "core/conformance.h"
#include "core/manrs.h"
#include "ihr/dataset.h"
#include "irr/database.h"
#include "rpki/validation.h"

namespace manrs::core {

/// Finding 7.0 aggregates.
struct CompletenessStats {
  size_t total_orgs = 0;
  /// Organizations whose every AS (per as2org) is registered in MANRS.
  size_t orgs_all_ases_registered = 0;
  /// Organizations announcing IPv4 space only through registered ASes.
  size_t orgs_all_space_via_registered = 0;
  /// Organizations announcing some space from unregistered sibling ASes
  /// (117 in the paper).
  size_t orgs_some_space_unregistered = 0;
  /// ... of which, announcing *only* from unregistered ASes (8).
  size_t orgs_only_unregistered_space = 0;
  /// Partial registrations whose unregistered ASes are all quiescent (80).
  size_t orgs_quiescent_unregistered = 0;

  double pct_all_ases() const {
    return total_orgs ? 100.0 * static_cast<double>(orgs_all_ases_registered) /
                            static_cast<double>(total_orgs)
                      : 0.0;
  }
  double pct_all_space() const {
    return total_orgs
               ? 100.0 * static_cast<double>(orgs_all_space_via_registered) /
                     static_cast<double>(total_orgs)
               : 0.0;
  }
};

CompletenessStats compute_registration_completeness(
    const ManrsRegistry& registry, const astopo::As2Org& as2org,
    const std::vector<ihr::PrefixOriginRecord>& prefix_origins);

/// One row of Table 1.
struct CaseStudyRow {
  std::string org_id;
  std::string label;  // anonymized name, e.g. "CDN1"
  size_t rpki_invalid = 0;
  size_t rpki_sibling_cp = 0;
  size_t rpki_unrelated = 0;
  size_t irr_invalid = 0;  // IRR Invalid & RPKI NotFound
  size_t irr_sibling_cp = 0;
  size_t irr_unrelated = 0;
  /// Prefix-origins found in neither registry (the paper's parenthesized
  /// RPKI-NotFound entries, e.g. CDN2's single offending prefix).
  size_t unregistered = 0;
};

/// Classify the unconformant prefix-origins of one organization's MANRS
/// ASes by the affinity between the BGP origin and the origins registered
/// in RPKI/IRR for the prefix (§8.4 / Table 1 method).
CaseStudyRow analyze_unconformant_org(
    const Participant& participant, const std::string& label,
    const astopo::As2Org& as2org, const astopo::AsGraph& graph,
    const std::vector<ihr::PrefixOriginRecord>& prefix_origins,
    const rpki::VrpStore& vrps, const irr::IrrRegistry& irr_registry);

/// The ISOC-style monthly member report.
struct MemberAsReport {
  net::Asn asn;
  OriginationStats origination;
  PropagationStats propagation;
  Action4Verdict action4;
  Action1Verdict action1;
  /// Offending prefix-origins, for the "more actionable information"
  /// operators asked for in §10.
  std::vector<ihr::PrefixOriginRecord> unconformant_origins;
};

struct MemberReport {
  std::string org_id;
  Program program = Program::kIsp;
  std::vector<MemberAsReport> ases;
  bool action4_conformant = true;  // all registered ASes pass Action 4
  bool action1_conformant = true;
};

MemberReport build_member_report(
    const Participant& participant,
    const std::vector<ihr::PrefixOriginRecord>& prefix_origins,
    const std::vector<ihr::TransitRecord>& transits);

/// Human-readable rendering of the monthly report.
void print_member_report(std::ostream& out, const MemberReport& report);

}  // namespace manrs::core
