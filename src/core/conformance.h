// The MANRS conformance engine: Formulas 1-8 of the paper (§6.4-6.5).
//
// Definitions (§6.4): a prefix-origin pair is
//   * MANRS-conformant   if RPKI Valid, or IRR Valid, or IRR Invalid
//     Length (IRR has no max-length attribute, so de-aggregated
//     traffic-engineering announcements are tolerated, §3);
//   * MANRS-unconformant if RPKI Invalid, or (RPKI NotFound and IRR
//     Invalid);
//   * neither (unregistered) when both registries have no covering record
//     -- counted in totals but in neither numerator.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "astopo/prefix2as.h"
#include "core/manrs.h"
#include "ihr/dataset.h"
#include "irr/validation.h"
#include "rpki/validation.h"

namespace manrs::core {

/// The paper's tri-state classification of one prefix-origin.
enum class ConformanceClass : uint8_t {
  kConformant,
  kUnconformant,
  kUnregistered,
};

ConformanceClass classify_conformance(rpki::RpkiStatus rpki,
                                      irr::IrrStatus irr);

/// Per-AS origination behaviour (§6.4 "Prefix Origination Behavior").
struct OriginationStats {
  size_t total = 0;          // prefixes originated
  size_t rpki_valid = 0;     // RPKI Valid
  size_t rpki_invalid = 0;   // RPKI Invalid or Invalid Length
  size_t rpki_not_found = 0;
  size_t irr_valid = 0;      // IRR Valid
  size_t irr_invalid = 0;    // IRR Invalid (wrong origin)
  size_t irr_invalid_len = 0;
  size_t irr_not_found = 0;
  size_t conformant = 0;     // MANRS-conformant pairs

  /// Formula 1: percent RPKI Valid of originated prefixes.
  double og_rpki_valid() const;
  /// Formula 2: percent IRR Valid of originated prefixes.
  double og_irr_valid() const;
  /// Formula 3: percent MANRS-conformant of originated prefixes.
  double og_conformant() const;
};

/// Per-AS propagation behaviour (§6.4 "Route Filtering Behavior").
struct PropagationStats {
  size_t total = 0;               // prefixes propagated (transited)
  size_t rpki_invalid = 0;        // RPKI Invalid + Invalid Length
  size_t irr_invalid = 0;         // IRR Invalid
  size_t customer_total = 0;      // propagated and learned from a customer
  size_t customer_unconformant = 0;

  /// Formula 4: percent RPKI-invalid of propagated prefixes.
  double pg_rpki_invalid() const;
  /// Formula 5: percent IRR-invalid of propagated prefixes.
  double pg_irr_invalid() const;
  /// Formula 6: percent MANRS-unconformant of propagated *customer*
  /// prefixes.
  double pg_unconformant() const;
};

/// Aggregate origination stats per origin AS from the IHR prefix-origin
/// dataset. Every distinct (prefix, origin) counts once.
std::unordered_map<uint32_t, OriginationStats> compute_origination_stats(
    const std::vector<ihr::PrefixOriginRecord>& records);

/// Aggregate propagation stats per transit AS from the IHR transit
/// dataset. Every distinct (prefix, origin, transit) counts once.
std::unordered_map<uint32_t, PropagationStats> compute_propagation_stats(
    const std::vector<ihr::TransitRecord>& records);

/// Action 4 verdict for one AS in a program (§8.3). An AS that originates
/// nothing is trivially conformant.
struct Action4Verdict {
  bool conformant = false;
  bool trivially = false;  // no originated prefixes
  double og_conformant = 0.0;
};

Action4Verdict check_action4(const OriginationStats* stats, Program program);

/// Action 1 verdict (§9.3): fully conformant iff no propagated customer
/// announcement is MANRS-unconformant; trivially conformant when the AS
/// propagates nothing.
struct Action1Verdict {
  bool conformant = false;
  bool trivially = false;       // propagated no announcements at all
  bool provides_transit = false;
  double pg_unconformant = 0.0;
};

Action1Verdict check_action1(const PropagationStats* stats);

/// RPKI saturation (Formulas 7-8): the fraction of routed IPv4 address
/// space covered by a VRP, split by MANRS membership. Address space is a
/// union of intervals (no double counting across overlapping prefixes).
struct SaturationResult {
  double manrs_routed_space = 0.0;
  double manrs_covered_space = 0.0;
  double non_manrs_routed_space = 0.0;
  double non_manrs_covered_space = 0.0;

  double rsat_manrs() const {
    return manrs_routed_space > 0
               ? 100.0 * manrs_covered_space / manrs_routed_space
               : 0.0;
  }
  double rsat_non_manrs() const {
    return non_manrs_routed_space > 0
               ? 100.0 * non_manrs_covered_space / non_manrs_routed_space
               : 0.0;
  }
};

SaturationResult compute_rpki_saturation(const astopo::Prefix2As& routed,
                                         const rpki::VrpStore& vrps,
                                         const ManrsRegistry& registry);

/// IRR coverage analog used for the §8.6 narrative (64.8% of v4 space had
/// no VRP vs 5.3% no IRR object).
SaturationResult compute_irr_saturation(const astopo::Prefix2As& routed,
                                        const irr::IrrRegistry& irr_registry,
                                        const ManrsRegistry& registry);

/// MANRS preference score (Formula 9, §6.5): for one prefix-origin, the
/// sum of MANRS transit hegemony scores minus the sum of non-MANRS ones.
/// Positive means the announcement is more likely to traverse MANRS
/// networks.
struct PreferenceScore {
  bgp::PrefixOrigin prefix_origin;
  rpki::RpkiStatus rpki = rpki::RpkiStatus::kNotFound;
  double score = 0.0;
};

std::vector<PreferenceScore> compute_preference_scores(
    const std::vector<ihr::TransitRecord>& transits,
    const ManrsRegistry& registry);

}  // namespace manrs::core
