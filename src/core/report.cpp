#include "core/report.h"

#include <algorithm>
#include <ostream>
#include <set>
#include <unordered_set>

namespace manrs::core {

CompletenessStats compute_registration_completeness(
    const ManrsRegistry& registry, const astopo::As2Org& as2org,
    const std::vector<ihr::PrefixOriginRecord>& prefix_origins) {
  CompletenessStats stats;

  // Which ASes actually originate something, and how much v4 space.
  std::unordered_map<uint32_t, double> space_by_as;
  for (const auto& r : prefix_origins) {
    if (r.prefix.is_v4()) {
      space_by_as[r.origin.value()] += r.prefix.address_count();
    }
  }

  for (const auto& participant : registry.participants()) {
    ++stats.total_orgs;
    std::unordered_set<uint32_t> registered;
    for (net::Asn asn : participant.registered_ases) {
      registered.insert(asn.value());
    }
    std::vector<net::Asn> all_ases = as2org.ases_of(participant.org_id);
    if (all_ases.empty()) {
      // Org unknown to as2org: fall back to the registered list.
      all_ases = participant.registered_ases;
    }

    bool all_registered = true;
    double registered_space = 0.0;
    double unregistered_space = 0.0;
    bool unregistered_quiescent = true;
    for (net::Asn asn : all_ases) {
      auto it = space_by_as.find(asn.value());
      double space = it == space_by_as.end() ? 0.0 : it->second;
      if (registered.count(asn.value())) {
        registered_space += space;
      } else {
        all_registered = false;
        unregistered_space += space;
        if (space > 0.0) unregistered_quiescent = false;
      }
    }

    if (all_registered) ++stats.orgs_all_ases_registered;
    if (unregistered_space == 0.0) {
      ++stats.orgs_all_space_via_registered;
    } else {
      ++stats.orgs_some_space_unregistered;
      if (registered_space == 0.0) ++stats.orgs_only_unregistered_space;
    }
    if (!all_registered && unregistered_quiescent) {
      ++stats.orgs_quiescent_unregistered;
    }
  }
  return stats;
}

CaseStudyRow analyze_unconformant_org(
    const Participant& participant, const std::string& label,
    const astopo::As2Org& as2org, const astopo::AsGraph& graph,
    const std::vector<ihr::PrefixOriginRecord>& prefix_origins,
    const rpki::VrpStore& vrps, const irr::IrrRegistry& irr_registry) {
  CaseStudyRow row;
  row.org_id = participant.org_id;
  row.label = label;

  std::unordered_set<uint32_t> member_ases;
  for (net::Asn asn : participant.registered_ases) {
    member_ases.insert(asn.value());
  }

  // Best (closest) affinity between the BGP origin and any registered
  // origin: Sibling beats C-P beats Unrelated.
  auto best_affinity = [&](net::Asn bgp_origin,
                           const std::vector<net::Asn>& registered_origins)
      -> astopo::AsAffinity {
    astopo::AsAffinity best = astopo::AsAffinity::kUnrelated;
    for (net::Asn reg : registered_origins) {
      astopo::AsAffinity a = as2org.classify(bgp_origin, reg, graph);
      if (a == astopo::AsAffinity::kSibling) return a;
      if (a == astopo::AsAffinity::kCustomerProvider) best = a;
    }
    return best;
  };

  for (const auto& record : prefix_origins) {
    if (!member_ases.count(record.origin.value())) continue;
    ConformanceClass cls = classify_conformance(record.rpki, record.irr);
    if (cls == ConformanceClass::kUnregistered) {
      ++row.unregistered;
      continue;
    }
    if (cls != ConformanceClass::kUnconformant) continue;
    if (rpki::is_invalid(record.rpki)) {
      ++row.rpki_invalid;
      std::vector<net::Asn> registered;
      for (const auto& vrp : vrps.covering(record.prefix)) {
        if (vrp.asn != record.origin) registered.push_back(vrp.asn);
      }
      if (best_affinity(record.origin, registered) ==
          astopo::AsAffinity::kUnrelated) {
        ++row.rpki_unrelated;
      } else {
        ++row.rpki_sibling_cp;
      }
    } else if (record.irr == irr::IrrStatus::kInvalidAsn) {
      // Table 1's IRR Invalid column is scoped to RPKI NotFound (RPKI
      // Invalid rows are already counted above).
      ++row.irr_invalid;
      std::vector<net::Asn> registered;
      for (const auto& route : irr_registry.covering_routes(record.prefix)) {
        if (route.origin != record.origin) registered.push_back(route.origin);
      }
      if (best_affinity(record.origin, registered) ==
          astopo::AsAffinity::kUnrelated) {
        ++row.irr_unrelated;
      } else {
        ++row.irr_sibling_cp;
      }
    }
  }
  return row;
}

MemberReport build_member_report(
    const Participant& participant,
    const std::vector<ihr::PrefixOriginRecord>& prefix_origins,
    const std::vector<ihr::TransitRecord>& transits) {
  MemberReport report;
  report.org_id = participant.org_id;
  report.program = participant.program;

  auto origination = compute_origination_stats(prefix_origins);
  auto propagation = compute_propagation_stats(transits);

  for (net::Asn asn : participant.registered_ases) {
    MemberAsReport as_report;
    as_report.asn = asn;
    auto og_it = origination.find(asn.value());
    const OriginationStats* og =
        og_it == origination.end() ? nullptr : &og_it->second;
    auto pg_it = propagation.find(asn.value());
    const PropagationStats* pg =
        pg_it == propagation.end() ? nullptr : &pg_it->second;
    if (og) as_report.origination = *og;
    if (pg) as_report.propagation = *pg;
    as_report.action4 = check_action4(og, participant.program);
    as_report.action1 = check_action1(pg);
    if (!as_report.action4.conformant) report.action4_conformant = false;
    if (!as_report.action1.conformant) report.action1_conformant = false;

    for (const auto& record : prefix_origins) {
      if (record.origin != asn) continue;
      if (classify_conformance(record.rpki, record.irr) ==
          ConformanceClass::kUnconformant) {
        as_report.unconformant_origins.push_back(record);
      }
    }
    report.ases.push_back(std::move(as_report));
  }
  return report;
}

void print_member_report(std::ostream& out, const MemberReport& report) {
  out << "=== MANRS conformance report: " << report.org_id << " ("
      << to_string(report.program) << " program) ===\n";
  out << "Action 4 (route registration): "
      << (report.action4_conformant ? "CONFORMANT" : "NOT CONFORMANT")
      << "\n";
  out << "Action 1 (route filtering):    "
      << (report.action1_conformant ? "CONFORMANT" : "NOT CONFORMANT")
      << "\n";
  for (const auto& as_report : report.ases) {
    out << "  " << as_report.asn.to_string() << ": originated "
        << as_report.origination.total << " prefixes ("
        << as_report.origination.og_conformant()
        << "% conformant), propagated " << as_report.propagation.total
        << " (" << as_report.propagation.customer_unconformant
        << " unconformant from customers)\n";
    if (as_report.action4.trivially) {
      out << "    Action 4: trivially conformant (no originated prefixes)\n";
    }
    for (const auto& record : as_report.unconformant_origins) {
      out << "    offending: " << record.prefix.to_string() << " (RPKI "
          << rpki::to_string(record.rpki) << ", IRR "
          << irr::to_string(record.irr) << ")\n";
    }
  }
}

}  // namespace manrs::core
