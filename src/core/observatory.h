// MANRS Observatory-style readiness scoring (the paper's reference [1],
// https://observatory.manrs.org).
//
// ISOC's Observatory aggregates external measurements into per-participant
// "readiness" percentages per action and buckets participants into
// ready / aspiring / lagging. The paper notes ISOC "provides some
// aggregated statistics from external sources but declines to publicly
// detail non-conformance"; this module computes the same style of
// aggregate from our measured data, making the private monthly-report
// content reproducible.
//
// Readiness definitions (per participant, over its registered ASes):
//   * Action 1 (filtering):   100 - mean(PG_unconformant); ASes providing
//     no transit contribute 100.
//   * Action 3 (coordination): percent of registered ASes with usable
//     contact information (IRR aut-num or fresh PeeringDB).
//   * Action 4 (registration): mean(OG_conformant); quiescent ASes
//     contribute 100.
// Overall readiness weighs the mandatory routing actions double:
//   (2*A1 + A3 + 2*A4) / 5.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/conformance.h"
#include "core/manrs.h"
#include "core/peeringdb.h"
#include "ihr/dataset.h"
#include "netbase/rir.h"

namespace manrs::core {

enum class ReadinessBucket : uint8_t {
  kReady = 0,     // overall >= 95
  kAspiring = 1,  // overall >= 80
  kLagging = 2,   // below 80
};

std::string_view to_string(ReadinessBucket bucket);
ReadinessBucket bucket_for(double overall);

struct ParticipantReadiness {
  std::string org_id;
  Program program = Program::kIsp;
  double action1 = 100.0;
  double action3 = 100.0;
  double action4 = 100.0;
  double overall = 100.0;
  ReadinessBucket bucket = ReadinessBucket::kReady;
};

struct ObservatoryInputs {
  const ManrsRegistry& registry;
  const irr::IrrRegistry& irr_registry;
  const PeeringDb& peeringdb;
  const std::vector<ihr::PrefixOriginRecord>& prefix_origins;
  const std::vector<ihr::TransitRecord>& transits;
  util::Date as_of;
};

/// Score every participant. Deterministic (registry order).
std::vector<ParticipantReadiness> score_participants(
    const ObservatoryInputs& inputs);

/// Ecosystem aggregate: bucket counts and mean readiness per action.
struct ObservatorySummary {
  size_t ready = 0;
  size_t aspiring = 0;
  size_t lagging = 0;
  double mean_action1 = 0.0;
  double mean_action3 = 0.0;
  double mean_action4 = 0.0;
  double mean_overall = 0.0;
};

ObservatorySummary summarize(
    const std::vector<ParticipantReadiness>& readiness);

}  // namespace manrs::core
