#include "core/observatory.h"

namespace manrs::core {

std::string_view to_string(ReadinessBucket bucket) {
  switch (bucket) {
    case ReadinessBucket::kReady:
      return "ready";
    case ReadinessBucket::kAspiring:
      return "aspiring";
    case ReadinessBucket::kLagging:
      return "lagging";
  }
  return "?";
}

ReadinessBucket bucket_for(double overall) {
  if (overall >= 95.0) return ReadinessBucket::kReady;
  if (overall >= 80.0) return ReadinessBucket::kAspiring;
  return ReadinessBucket::kLagging;
}

std::vector<ParticipantReadiness> score_participants(
    const ObservatoryInputs& inputs) {
  auto origination = compute_origination_stats(inputs.prefix_origins);
  auto propagation = compute_propagation_stats(inputs.transits);

  std::vector<ParticipantReadiness> out;
  out.reserve(inputs.registry.participant_count());
  for (const auto& participant : inputs.registry.participants()) {
    ParticipantReadiness readiness;
    readiness.org_id = participant.org_id;
    readiness.program = participant.program;

    double a1_sum = 0, a3_sum = 0, a4_sum = 0;
    size_t n = participant.registered_ases.size();
    for (net::Asn asn : participant.registered_ases) {
      // Action 4: conformant share of originations (100 when quiescent).
      auto og = origination.find(asn.value());
      a4_sum += (og == origination.end() || og->second.total == 0)
                    ? 100.0
                    : og->second.og_conformant();
      // Action 1: 100 - unconformant customer propagation share.
      auto pg = propagation.find(asn.value());
      a1_sum += (pg == propagation.end() || pg->second.customer_total == 0)
                    ? 100.0
                    : 100.0 - pg->second.pg_unconformant();
      // Action 3: contact present.
      auto a3 = check_action3(inputs.irr_registry, inputs.peeringdb, asn,
                              inputs.as_of);
      a3_sum += a3.conformant ? 100.0 : 0.0;
    }
    if (n > 0) {
      readiness.action1 = a1_sum / static_cast<double>(n);
      readiness.action3 = a3_sum / static_cast<double>(n);
      readiness.action4 = a4_sum / static_cast<double>(n);
    }
    readiness.overall = (2.0 * readiness.action1 + readiness.action3 +
                         2.0 * readiness.action4) /
                        5.0;
    readiness.bucket = bucket_for(readiness.overall);
    out.push_back(std::move(readiness));
  }
  return out;
}

ObservatorySummary summarize(
    const std::vector<ParticipantReadiness>& readiness) {
  ObservatorySummary summary;
  for (const auto& r : readiness) {
    switch (r.bucket) {
      case ReadinessBucket::kReady:
        ++summary.ready;
        break;
      case ReadinessBucket::kAspiring:
        ++summary.aspiring;
        break;
      case ReadinessBucket::kLagging:
        ++summary.lagging;
        break;
    }
    summary.mean_action1 += r.action1;
    summary.mean_action3 += r.action3;
    summary.mean_action4 += r.action4;
    summary.mean_overall += r.overall;
  }
  if (!readiness.empty()) {
    double n = static_cast<double>(readiness.size());
    summary.mean_action1 /= n;
    summary.mean_action3 /= n;
    summary.mean_action4 /= n;
    summary.mean_overall /= n;
  }
  return summary;
}

}  // namespace manrs::core
