// Routing-incident detection -- the paper's §12 future work: "we plan to
// further study the impact of MANRS by comparing the number of routing
// incidents before and after the launch of MANRS".
//
// The detector consumes a sequence of routing-table snapshots (or the
// update stream derived from them) and flags two incident classes:
//
//   * MOAS conflict: a prefix acquires an origin AS that conflicts with
//     its established origin (the classic hijack/leak signature, as in
//     ARTEMIS [50]);
//   * RPKI-invalid origination episode: a (prefix, origin) appears whose
//     RPKI status is Invalid -- the paper's conformance lens applied to
//     events instead of snapshots.
//
// An incident spans consecutive snapshots: it opens when the offending
// pair first appears and closes when it disappears.
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bgp/route.h"
#include "core/manrs.h"
#include "rpki/validation.h"

namespace manrs::core {

enum class IncidentKind : uint8_t {
  kMoasConflict = 0,
  kRpkiInvalidOrigin = 1,
};

std::string_view to_string(IncidentKind kind);

struct Incident {
  IncidentKind kind = IncidentKind::kMoasConflict;
  net::Prefix prefix;
  net::Asn offender;          // the origin that triggered the incident
  net::Asn established;       // the pre-existing origin (MOAS only)
  size_t first_snapshot = 0;  // index where the incident opened
  size_t last_snapshot = 0;   // last index where it was visible
  bool ongoing = false;       // still visible in the final snapshot

  size_t duration() const { return last_snapshot - first_snapshot + 1; }
};

/// Streaming detector: feed snapshots in order, then take the incidents.
class IncidentDetector {
 public:
  /// `vrps` drives the RPKI-invalid classification; it is assumed stable
  /// across the window (true for the paper's 3-month window, §8.5).
  explicit IncidentDetector(const rpki::VrpStore& vrps) : vrps_(vrps) {}

  /// Process the next snapshot (a full table of prefix-origin pairs).
  void observe(const std::vector<bgp::PrefixOrigin>& table);

  size_t snapshots_observed() const { return snapshot_count_; }

  /// All incidents, opened order. Incidents still visible in the last
  /// observed snapshot are marked ongoing.
  std::vector<Incident> incidents() const;

 private:
  const rpki::VrpStore& vrps_;
  size_t snapshot_count_ = 0;
  /// Origins seen for each prefix in the first snapshot (the established
  /// baseline for MOAS detection).
  std::unordered_map<net::Prefix, std::vector<net::Asn>> baseline_;
  /// Open + closed incidents, keyed for episode tracking.
  std::unordered_map<bgp::PrefixOrigin, size_t> open_;  // -> index in list_
  std::vector<Incident> list_;
};

/// Summary statistics for the MANRS-vs-rest comparison.
struct IncidentSummary {
  size_t total = 0;
  size_t moas = 0;
  size_t rpki_invalid = 0;
  size_t by_manrs_members = 0;  // offender registered in MANRS
  size_t by_others = 0;
  double mean_duration = 0.0;
  double member_rate_per_origin = 0.0;  // incidents per originating member
  double other_rate_per_origin = 0.0;
};

IncidentSummary summarize_incidents(
    const std::vector<Incident>& incidents, const ManrsRegistry& registry,
    size_t member_origin_count, size_t other_origin_count);

}  // namespace manrs::core
