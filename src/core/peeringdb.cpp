#include "core/peeringdb.h"

#include <istream>
#include <ostream>

#include "util/csv.h"

namespace manrs::core {

void PeeringDb::add(PeeringDbNet net) {
  nets_[net.asn.value()] = std::move(net);
}

const PeeringDbNet* PeeringDb::find(net::Asn asn) const {
  auto it = nets_.find(asn.value());
  return it == nets_.end() ? nullptr : &it->second;
}

void PeeringDb::write_csv(std::ostream& out) const {
  util::CsvWriter writer(out);
  writer.write_row(
      std::vector<std::string_view>{"asn", "name", "contact", "updated"});
  // Deterministic order.
  std::vector<uint32_t> asns;
  asns.reserve(nets_.size());
  for (const auto& [asn, _] : nets_) asns.push_back(asn);
  std::sort(asns.begin(), asns.end());
  for (uint32_t asn : asns) {
    const PeeringDbNet& net = nets_.at(asn);
    writer.write_row(std::vector<std::string_view>{
        std::to_string(asn), net.name, net.contact_email,
        net.updated.to_string()});
  }
}

PeeringDb PeeringDb::read_csv(std::istream& in, size_t* bad_rows) {
  util::CsvReader reader(in);
  PeeringDb db;
  size_t bad = 0;
  util::CsvRow row;
  while (reader.next(row)) {
    if (!row.empty() && row[0] == "asn") continue;
    if (row.size() < 4) {
      ++bad;
      continue;
    }
    auto asn = net::Asn::parse(row[0]);
    auto updated = util::Date::parse(row[3]);
    if (!asn || !updated) {
      ++bad;
      continue;
    }
    db.add(PeeringDbNet{*asn, row[1], row[2], *updated});
  }
  if (bad_rows) *bad_rows = bad;
  return db;
}

Action3Verdict check_action3(const irr::IrrRegistry& irr_registry,
                             const PeeringDb& peeringdb, net::Asn asn,
                             const util::Date& as_of, int64_t max_age_days) {
  Action3Verdict verdict;
  for (const irr::IrrDatabase* db : irr_registry.databases()) {
    const irr::AutNumObject* aut = db->find_aut_num(asn);
    if (aut != nullptr && aut->has_contact()) {
      verdict.via_irr = true;
      break;
    }
  }
  if (const PeeringDbNet* net = peeringdb.find(asn)) {
    if (!net->contact_email.empty()) {
      if (as_of.to_days() - net->updated.to_days() <= max_age_days) {
        verdict.via_peeringdb = true;
      } else {
        verdict.stale_peeringdb = true;
      }
    }
  }
  verdict.conformant = verdict.via_irr || verdict.via_peeringdb;
  return verdict;
}

}  // namespace manrs::core
