#include "core/manrs.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "util/csv.h"
#include "util/strings.h"

namespace manrs::core {

std::string_view to_string(Program p) {
  switch (p) {
    case Program::kIsp:
      return "ISP";
    case Program::kCdn:
      return "CDN";
    case Program::kIxp:
      return "IXP";
    case Program::kEquipment:
      return "Equipment";
  }
  return "?";
}

std::optional<Program> parse_program(std::string_view s) {
  if (util::iequals(s, "ISP") || util::iequals(s, "Network Operators")) {
    return Program::kIsp;
  }
  if (util::iequals(s, "CDN") || util::iequals(s, "CDN and Cloud")) {
    return Program::kCdn;
  }
  if (util::iequals(s, "IXP")) return Program::kIxp;
  if (util::iequals(s, "Equipment")) return Program::kEquipment;
  return std::nullopt;
}

double action4_threshold(Program p) {
  return p == Program::kCdn ? kCdnAction4Threshold : kIspAction4Threshold;
}

void ManrsRegistry::add_participant(Participant participant) {
  size_t index = participants_.size();
  for (net::Asn asn : participant.registered_ases) {
    as_to_participant_.emplace(asn.value(), index);  // first wins
  }
  participants_.push_back(std::move(participant));
}

bool ManrsRegistry::is_member(net::Asn asn) const {
  return as_to_participant_.count(asn.value()) > 0;
}

bool ManrsRegistry::is_member(net::Asn asn, const util::Date& date) const {
  auto it = as_to_participant_.find(asn.value());
  if (it == as_to_participant_.end()) return false;
  return participants_[it->second].joined <= date;
}

std::optional<Program> ManrsRegistry::program_of(net::Asn asn) const {
  auto it = as_to_participant_.find(asn.value());
  if (it == as_to_participant_.end()) return std::nullopt;
  return participants_[it->second].program;
}

std::optional<util::Date> ManrsRegistry::join_date(net::Asn asn) const {
  auto it = as_to_participant_.find(asn.value());
  if (it == as_to_participant_.end()) return std::nullopt;
  return participants_[it->second].joined;
}

std::vector<net::Asn> ManrsRegistry::member_ases() const {
  std::vector<net::Asn> out;
  for (const auto& [value, _] : as_to_participant_) out.emplace_back(value);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<net::Asn> ManrsRegistry::member_ases(Program program) const {
  std::vector<net::Asn> out;
  for (const auto& [value, index] : as_to_participant_) {
    if (participants_[index].program == program) out.emplace_back(value);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<net::Asn> ManrsRegistry::member_ases_at(
    const util::Date& date) const {
  std::vector<net::Asn> out;
  for (const auto& [value, index] : as_to_participant_) {
    if (participants_[index].joined <= date) out.emplace_back(value);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<const Participant*> ManrsRegistry::participants_in(
    Program program) const {
  std::vector<const Participant*> out;
  for (const auto& p : participants_) {
    if (p.program == program) out.push_back(&p);
  }
  return out;
}

const Participant* ManrsRegistry::participant_of(net::Asn asn) const {
  auto it = as_to_participant_.find(asn.value());
  if (it == as_to_participant_.end()) return nullptr;
  return &participants_[it->second];
}

const Participant* ManrsRegistry::find_org(std::string_view org_id) const {
  for (const auto& p : participants_) {
    if (p.org_id == org_id) return &p;
  }
  return nullptr;
}

void ManrsRegistry::write_csv(std::ostream& out) const {
  util::CsvWriter writer(out);
  writer.write_row(
      std::vector<std::string_view>{"org_id", "program", "joined", "ases"});
  for (const auto& p : participants_) {
    std::vector<std::string> asn_strings;
    asn_strings.reserve(p.registered_ases.size());
    for (net::Asn asn : p.registered_ases) {
      asn_strings.push_back(std::to_string(asn.value()));
    }
    writer.write_row(std::vector<std::string_view>{
        p.org_id, to_string(p.program), p.joined.to_string(),
        util::join(asn_strings, "+")});
  }
}

ManrsRegistry ManrsRegistry::read_csv(std::istream& in, size_t* bad_rows) {
  util::CsvReader reader(in);
  ManrsRegistry registry;
  size_t bad = 0;
  util::CsvRow row;
  while (reader.next(row)) {
    if (!row.empty() && row[0] == "org_id") continue;  // header
    if (row.size() < 4) {
      ++bad;
      continue;
    }
    auto program = parse_program(row[1]);
    auto joined = util::Date::parse(row[2]);
    if (!program || !joined) {
      ++bad;
      continue;
    }
    Participant p;
    p.org_id = row[0];
    p.program = *program;
    p.joined = *joined;
    bool ok = true;
    for (auto part : util::split(row[3], '+')) {
      if (part.empty()) continue;
      auto asn = net::Asn::parse(part);
      if (!asn) {
        ok = false;
        break;
      }
      p.registered_ases.push_back(*asn);
    }
    if (!ok) {
      ++bad;
      continue;
    }
    registry.add_participant(std::move(p));
  }
  if (bad_rows) *bad_rows = bad;
  return registry;
}

}  // namespace manrs::core
