// Snapshot-to-snapshot monitoring: what changed between two measurement
// rounds.
//
// Operators told the authors the monthly MANRS reports "needed more
// actionable information" (§10). The actionable unit is the *delta*: which
// prefixes became unconformant since last month, which were fixed, which
// ASes crossed the conformance threshold, and how the registries churned.
// This module computes those deltas from any two snapshots -- weekly IHR
// tables (§8.5), monthly report rounds, or annual archives.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/conformance.h"
#include "ihr/dataset.h"
#include "rpki/vrp.h"

namespace manrs::core {

/// Per-prefix conformance transition between two prefix-origin snapshots.
enum class PrefixTransition : uint8_t {
  kBecameUnconformant,  // conformant/unregistered/new -> unconformant
  kResolved,            // unconformant -> conformant (or withdrawn)
  kNewUnconformant,     // appeared already-unconformant
  kWithdrawnUnconformant,  // unconformant and no longer announced
};

std::string_view to_string(PrefixTransition t);

struct PrefixChange {
  bgp::PrefixOrigin prefix_origin;
  PrefixTransition transition = PrefixTransition::kBecameUnconformant;
  rpki::RpkiStatus rpki_after = rpki::RpkiStatus::kNotFound;
  irr::IrrStatus irr_after = irr::IrrStatus::kNotFound;
};

/// Per-AS verdict flip between two snapshots.
struct AsTransition {
  net::Asn asn;
  bool was_conformant = false;
  bool now_conformant = false;
  double og_before = 0.0;  // OG_conformant percentages
  double og_after = 0.0;
};

struct ConformanceDelta {
  std::vector<PrefixChange> prefix_changes;   // deterministic order
  std::vector<AsTransition> as_transitions;   // only ASes that flipped
  size_t stable_conformant_ases = 0;
  size_t stable_unconformant_ases = 0;
};

/// Diff two classified prefix-origin snapshots. AS-level verdicts use the
/// given Action 4 threshold (the ISP program's 90% by default); ASes
/// absent from a snapshot count as trivially conformant on that side.
ConformanceDelta diff_conformance(
    const std::vector<ihr::PrefixOriginRecord>& before,
    const std::vector<ihr::PrefixOriginRecord>& after,
    double threshold = kIspAction4Threshold);

/// Registry churn between two VRP snapshots: added / removed / unchanged
/// counts plus the listings (sorted).
struct VrpDelta {
  std::vector<rpki::Vrp> added;
  std::vector<rpki::Vrp> removed;
  size_t unchanged = 0;
};

VrpDelta diff_vrps(const std::vector<rpki::Vrp>& before,
                   const std::vector<rpki::Vrp>& after);

}  // namespace manrs::core
