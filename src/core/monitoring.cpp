#include "core/monitoring.h"

#include <algorithm>

namespace manrs::core {

namespace {

/// Snapshot index: (prefix-origin, record) sorted by key, first record
/// winning on duplicates -- a flat sorted vector instead of a node map,
/// same deterministic order (see docs/performance.md).
using IndexEntry =
    std::pair<bgp::PrefixOrigin, const ihr::PrefixOriginRecord*>;

std::vector<IndexEntry> build_index(
    const std::vector<ihr::PrefixOriginRecord>& records) {
  std::vector<IndexEntry> index;
  index.reserve(records.size());
  for (const auto& r : records) {
    index.emplace_back(bgp::PrefixOrigin{r.prefix, r.origin}, &r);
  }
  // stable_sort + unique keep the FIRST record of each duplicate key,
  // matching the map::emplace behaviour this replaces.
  std::stable_sort(index.begin(), index.end(),
                   [](const IndexEntry& a, const IndexEntry& b) {
                     return a.first < b.first;
                   });
  index.erase(std::unique(index.begin(), index.end(),
                          [](const IndexEntry& a, const IndexEntry& b) {
                            return a.first == b.first;
                          }),
              index.end());
  return index;
}

const ihr::PrefixOriginRecord* find_record(
    const std::vector<IndexEntry>& index, const bgp::PrefixOrigin& po) {
  auto it = std::lower_bound(index.begin(), index.end(), po,
                             [](const IndexEntry& e,
                                const bgp::PrefixOrigin& key) {
                               return e.first < key;
                             });
  return it != index.end() && it->first == po ? it->second : nullptr;
}

}  // namespace

std::string_view to_string(PrefixTransition t) {
  switch (t) {
    case PrefixTransition::kBecameUnconformant:
      return "became-unconformant";
    case PrefixTransition::kResolved:
      return "resolved";
    case PrefixTransition::kNewUnconformant:
      return "new-unconformant";
    case PrefixTransition::kWithdrawnUnconformant:
      return "withdrawn-unconformant";
  }
  return "?";
}

ConformanceDelta diff_conformance(
    const std::vector<ihr::PrefixOriginRecord>& before,
    const std::vector<ihr::PrefixOriginRecord>& after, double threshold) {
  ConformanceDelta delta;

  // Index both snapshots by prefix-origin (sorted flat vectors; the
  // sorted order is the deterministic output order).
  std::vector<IndexEntry> b_index = build_index(before);
  std::vector<IndexEntry> a_index = build_index(after);

  auto unconformant = [](const ihr::PrefixOriginRecord* r) {
    return r != nullptr && classify_conformance(r->rpki, r->irr) ==
                               ConformanceClass::kUnconformant;
  };

  for (const auto& [po, a_record] : a_index) {
    const ihr::PrefixOriginRecord* b_record = find_record(b_index, po);
    bool was_bad = unconformant(b_record);
    bool is_bad = unconformant(a_record);
    if (is_bad && !was_bad) {
      PrefixChange change;
      change.prefix_origin = po;
      change.transition = b_record == nullptr
                              ? PrefixTransition::kNewUnconformant
                              : PrefixTransition::kBecameUnconformant;
      change.rpki_after = a_record->rpki;
      change.irr_after = a_record->irr;
      delta.prefix_changes.push_back(change);
    } else if (!is_bad && was_bad) {
      PrefixChange change;
      change.prefix_origin = po;
      change.transition = PrefixTransition::kResolved;
      change.rpki_after = a_record->rpki;
      change.irr_after = a_record->irr;
      delta.prefix_changes.push_back(change);
    }
  }
  for (const auto& [po, b_record] : b_index) {
    if (find_record(a_index, po) != nullptr) continue;
    if (!unconformant(b_record)) continue;
    PrefixChange change;
    change.prefix_origin = po;
    change.transition = PrefixTransition::kWithdrawnUnconformant;
    delta.prefix_changes.push_back(change);
  }

  // AS-level verdict flips.
  auto og_before = compute_origination_stats(before);
  auto og_after = compute_origination_stats(after);
  auto pct = [&](const std::unordered_map<uint32_t, OriginationStats>& stats,
                 uint32_t asn) {
    auto it = stats.find(asn);
    // Absent / quiescent = trivially conformant (§8.3).
    return it == stats.end() || it->second.total == 0
               ? 100.0
               : it->second.og_conformant();
  };
  std::vector<uint32_t> asns;
  asns.reserve(og_before.size() + og_after.size());
  for (const auto& [asn, _] : og_before) asns.push_back(asn);
  for (const auto& [asn, _] : og_after) asns.push_back(asn);
  std::sort(asns.begin(), asns.end());
  asns.erase(std::unique(asns.begin(), asns.end()), asns.end());
  for (uint32_t asn : asns) {
    std::pair<double, double> pair{pct(og_before, asn), pct(og_after, asn)};
    bool was_ok = pair.first >= threshold;
    bool is_ok = pair.second >= threshold;
    if (was_ok == is_ok) {
      is_ok ? ++delta.stable_conformant_ases
            : ++delta.stable_unconformant_ases;
      continue;
    }
    AsTransition transition;
    transition.asn = net::Asn(asn);
    transition.was_conformant = was_ok;
    transition.now_conformant = is_ok;
    transition.og_before = pair.first;
    transition.og_after = pair.second;
    delta.as_transitions.push_back(transition);
  }
  return delta;
}

VrpDelta diff_vrps(const std::vector<rpki::Vrp>& before,
                   const std::vector<rpki::Vrp>& after) {
  VrpDelta delta;
  std::vector<rpki::Vrp> b = before;
  std::vector<rpki::Vrp> a = after;
  std::sort(b.begin(), b.end());
  std::sort(a.begin(), a.end());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(delta.added));
  std::set_difference(b.begin(), b.end(), a.begin(), a.end(),
                      std::back_inserter(delta.removed));
  // unchanged = |intersection|.
  std::vector<rpki::Vrp> common;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(common));
  delta.unchanged = common.size();
  return delta;
}

}  // namespace manrs::core
