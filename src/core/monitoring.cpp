#include "core/monitoring.h"

#include <algorithm>
#include <map>

namespace manrs::core {

std::string_view to_string(PrefixTransition t) {
  switch (t) {
    case PrefixTransition::kBecameUnconformant:
      return "became-unconformant";
    case PrefixTransition::kResolved:
      return "resolved";
    case PrefixTransition::kNewUnconformant:
      return "new-unconformant";
    case PrefixTransition::kWithdrawnUnconformant:
      return "withdrawn-unconformant";
  }
  return "?";
}

ConformanceDelta diff_conformance(
    const std::vector<ihr::PrefixOriginRecord>& before,
    const std::vector<ihr::PrefixOriginRecord>& after, double threshold) {
  ConformanceDelta delta;

  // Index both snapshots by prefix-origin. std::map keeps the output
  // deterministic.
  std::map<bgp::PrefixOrigin, const ihr::PrefixOriginRecord*> b_index,
      a_index;
  for (const auto& r : before) {
    b_index.emplace(bgp::PrefixOrigin{r.prefix, r.origin}, &r);
  }
  for (const auto& r : after) {
    a_index.emplace(bgp::PrefixOrigin{r.prefix, r.origin}, &r);
  }

  auto unconformant = [](const ihr::PrefixOriginRecord* r) {
    return r != nullptr && classify_conformance(r->rpki, r->irr) ==
                               ConformanceClass::kUnconformant;
  };

  for (const auto& [po, a_record] : a_index) {
    auto b_it = b_index.find(po);
    const ihr::PrefixOriginRecord* b_record =
        b_it == b_index.end() ? nullptr : b_it->second;
    bool was_bad = unconformant(b_record);
    bool is_bad = unconformant(a_record);
    if (is_bad && !was_bad) {
      PrefixChange change;
      change.prefix_origin = po;
      change.transition = b_record == nullptr
                              ? PrefixTransition::kNewUnconformant
                              : PrefixTransition::kBecameUnconformant;
      change.rpki_after = a_record->rpki;
      change.irr_after = a_record->irr;
      delta.prefix_changes.push_back(change);
    } else if (!is_bad && was_bad) {
      PrefixChange change;
      change.prefix_origin = po;
      change.transition = PrefixTransition::kResolved;
      change.rpki_after = a_record->rpki;
      change.irr_after = a_record->irr;
      delta.prefix_changes.push_back(change);
    }
  }
  for (const auto& [po, b_record] : b_index) {
    if (a_index.count(po)) continue;
    if (!unconformant(b_record)) continue;
    PrefixChange change;
    change.prefix_origin = po;
    change.transition = PrefixTransition::kWithdrawnUnconformant;
    delta.prefix_changes.push_back(change);
  }

  // AS-level verdict flips.
  auto og_before = compute_origination_stats(before);
  auto og_after = compute_origination_stats(after);
  std::map<uint32_t, std::pair<double, double>> percentages;
  auto pct = [&](const std::unordered_map<uint32_t, OriginationStats>& stats,
                 uint32_t asn) {
    auto it = stats.find(asn);
    // Absent / quiescent = trivially conformant (§8.3).
    return it == stats.end() || it->second.total == 0
               ? 100.0
               : it->second.og_conformant();
  };
  for (const auto& [asn, _] : og_before) {
    percentages[asn] = {pct(og_before, asn), pct(og_after, asn)};
  }
  for (const auto& [asn, _] : og_after) {
    percentages[asn] = {pct(og_before, asn), pct(og_after, asn)};
  }
  for (const auto& [asn, pair] : percentages) {
    bool was_ok = pair.first >= threshold;
    bool is_ok = pair.second >= threshold;
    if (was_ok == is_ok) {
      is_ok ? ++delta.stable_conformant_ases
            : ++delta.stable_unconformant_ases;
      continue;
    }
    AsTransition transition;
    transition.asn = net::Asn(asn);
    transition.was_conformant = was_ok;
    transition.now_conformant = is_ok;
    transition.og_before = pair.first;
    transition.og_after = pair.second;
    delta.as_transitions.push_back(transition);
  }
  return delta;
}

VrpDelta diff_vrps(const std::vector<rpki::Vrp>& before,
                   const std::vector<rpki::Vrp>& after) {
  VrpDelta delta;
  std::vector<rpki::Vrp> b = before;
  std::vector<rpki::Vrp> a = after;
  std::sort(b.begin(), b.end());
  std::sort(a.begin(), a.end());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(delta.added));
  std::set_difference(b.begin(), b.end(), a.begin(), a.end(),
                      std::back_inserter(delta.removed));
  // unchanged = |intersection|.
  std::vector<rpki::Vrp> common;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(common));
  delta.unchanged = common.size();
  return delta;
}

}  // namespace manrs::core
