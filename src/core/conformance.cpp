#include "core/conformance.h"

#include <algorithm>

namespace manrs::core {

ConformanceClass classify_conformance(rpki::RpkiStatus rpki,
                                      irr::IrrStatus irr) {
  if (rpki == rpki::RpkiStatus::kValid || irr == irr::IrrStatus::kValid ||
      irr == irr::IrrStatus::kInvalidLength) {
    return ConformanceClass::kConformant;
  }
  if (rpki::is_invalid(rpki) || irr == irr::IrrStatus::kInvalidAsn) {
    return ConformanceClass::kUnconformant;
  }
  return ConformanceClass::kUnregistered;
}

namespace {
double pct(size_t num, size_t den) {
  return den == 0 ? 0.0
                  : 100.0 * static_cast<double>(num) /
                        static_cast<double>(den);
}
}  // namespace

double OriginationStats::og_rpki_valid() const {
  return pct(rpki_valid, total);
}
double OriginationStats::og_irr_valid() const { return pct(irr_valid, total); }
double OriginationStats::og_conformant() const {
  return pct(conformant, total);
}

double PropagationStats::pg_rpki_invalid() const {
  return pct(rpki_invalid, total);
}
double PropagationStats::pg_irr_invalid() const {
  return pct(irr_invalid, total);
}
double PropagationStats::pg_unconformant() const {
  return pct(customer_unconformant, customer_total);
}

std::unordered_map<uint32_t, OriginationStats> compute_origination_stats(
    const std::vector<ihr::PrefixOriginRecord>& records) {
  std::unordered_map<uint32_t, OriginationStats> out;
  for (const auto& r : records) {
    OriginationStats& s = out[r.origin.value()];
    ++s.total;
    switch (r.rpki) {
      case rpki::RpkiStatus::kValid:
        ++s.rpki_valid;
        break;
      case rpki::RpkiStatus::kInvalidAsn:
      case rpki::RpkiStatus::kInvalidLength:
        ++s.rpki_invalid;
        break;
      case rpki::RpkiStatus::kNotFound:
        ++s.rpki_not_found;
        break;
    }
    switch (r.irr) {
      case irr::IrrStatus::kValid:
        ++s.irr_valid;
        break;
      case irr::IrrStatus::kInvalidAsn:
        ++s.irr_invalid;
        break;
      case irr::IrrStatus::kInvalidLength:
        ++s.irr_invalid_len;
        break;
      case irr::IrrStatus::kNotFound:
        ++s.irr_not_found;
        break;
    }
    if (classify_conformance(r.rpki, r.irr) == ConformanceClass::kConformant) {
      ++s.conformant;
    }
  }
  return out;
}

std::unordered_map<uint32_t, PropagationStats> compute_propagation_stats(
    const std::vector<ihr::TransitRecord>& records) {
  std::unordered_map<uint32_t, PropagationStats> out;
  for (const auto& r : records) {
    PropagationStats& s = out[r.transit.value()];
    ++s.total;
    if (rpki::is_invalid(r.rpki)) ++s.rpki_invalid;
    if (r.irr == irr::IrrStatus::kInvalidAsn) ++s.irr_invalid;
    if (r.via_customer) {
      ++s.customer_total;
      if (classify_conformance(r.rpki, r.irr) ==
          ConformanceClass::kUnconformant) {
        ++s.customer_unconformant;
      }
    }
  }
  return out;
}

Action4Verdict check_action4(const OriginationStats* stats, Program program) {
  Action4Verdict verdict;
  if (stats == nullptr || stats->total == 0) {
    // §8.3: ASes that originate nothing are trivially conformant.
    verdict.conformant = true;
    verdict.trivially = true;
    verdict.og_conformant = 100.0;
    return verdict;
  }
  verdict.og_conformant = stats->og_conformant();
  double threshold = action4_threshold(program);
  // The CDN requirement is "all prefixes": compare counts, not a float
  // percentage, to avoid 99.99%-rounds-to-100 artifacts.
  if (threshold >= 100.0) {
    verdict.conformant = stats->conformant == stats->total;
  } else {
    verdict.conformant = verdict.og_conformant >= threshold;
  }
  return verdict;
}

Action1Verdict check_action1(const PropagationStats* stats) {
  Action1Verdict verdict;
  if (stats == nullptr || stats->total == 0) {
    verdict.conformant = true;
    verdict.trivially = true;
    return verdict;
  }
  verdict.provides_transit = true;
  verdict.pg_unconformant = stats->pg_unconformant();
  verdict.conformant = stats->customer_unconformant == 0;
  return verdict;
}

namespace {

/// Union size of IPv4 intervals.
double interval_union(std::vector<std::pair<uint64_t, uint64_t>>& intervals) {
  if (intervals.empty()) return 0.0;
  std::sort(intervals.begin(), intervals.end());
  uint64_t total = 0;
  uint64_t start = intervals[0].first;
  uint64_t end = intervals[0].second;
  for (size_t i = 1; i < intervals.size(); ++i) {
    if (intervals[i].first <= end) {
      end = std::max(end, intervals[i].second);
    } else {
      total += end - start;
      start = intervals[i].first;
      end = intervals[i].second;
    }
  }
  total += end - start;
  return static_cast<double>(total);
}

template <typename CoveredFn>
SaturationResult compute_saturation(const astopo::Prefix2As& routed,
                                    const ManrsRegistry& registry,
                                    CoveredFn&& covered) {
  std::vector<std::pair<uint64_t, uint64_t>> manrs_all, manrs_cov;
  std::vector<std::pair<uint64_t, uint64_t>> other_all, other_cov;
  for (const auto& row : routed) {
    if (!row.prefix.is_v4()) continue;
    uint64_t start = row.prefix.address().v4_value();
    uint64_t size = 1ULL << (32 - row.prefix.length());
    bool member = registry.is_member(row.origin);
    auto& all = member ? manrs_all : other_all;
    auto& cov = member ? manrs_cov : other_cov;
    all.emplace_back(start, start + size);
    if (covered(row.prefix)) cov.emplace_back(start, start + size);
  }
  SaturationResult result;
  result.manrs_routed_space = interval_union(manrs_all);
  result.manrs_covered_space = interval_union(manrs_cov);
  result.non_manrs_routed_space = interval_union(other_all);
  result.non_manrs_covered_space = interval_union(other_cov);
  return result;
}

}  // namespace

SaturationResult compute_rpki_saturation(const astopo::Prefix2As& routed,
                                         const rpki::VrpStore& vrps,
                                         const ManrsRegistry& registry) {
  return compute_saturation(routed, registry, [&](const net::Prefix& p) {
    return vrps.covered(p);
  });
}

SaturationResult compute_irr_saturation(const astopo::Prefix2As& routed,
                                        const irr::IrrRegistry& irr_registry,
                                        const ManrsRegistry& registry) {
  return compute_saturation(routed, registry, [&](const net::Prefix& p) {
    return irr_registry.covered(p);
  });
}

std::vector<PreferenceScore> compute_preference_scores(
    const std::vector<ihr::TransitRecord>& transits,
    const ManrsRegistry& registry) {
  // Aggregate per prefix-origin by sort-then-scan over a flat vector
  // (this is a hot path at full scale; a node-based map thrashes the
  // cache). stable_sort keeps transit order inside each prefix-origin
  // run, so the last-record-wins rpki status and the floating-point
  // accumulation order -- and therefore the output bytes -- match the
  // old map-based build exactly.
  std::vector<const ihr::TransitRecord*> sorted;
  sorted.reserve(transits.size());
  for (const auto& t : transits) sorted.push_back(&t);
  auto key = [](const ihr::TransitRecord* t) {
    return bgp::PrefixOrigin{t->prefix, t->origin};
  };
  std::stable_sort(sorted.begin(), sorted.end(),
                   [&](const ihr::TransitRecord* a,
                       const ihr::TransitRecord* b) { return key(a) < key(b); });

  std::vector<PreferenceScore> out;
  for (size_t i = 0; i < sorted.size();) {
    PreferenceScore score;
    score.prefix_origin = key(sorted[i]);
    double manrs_sum = 0.0;
    double other_sum = 0.0;
    size_t j = i;
    for (; j < sorted.size() && key(sorted[j]) == score.prefix_origin; ++j) {
      score.rpki = sorted[j]->rpki;
      if (registry.is_member(sorted[j]->transit)) {
        manrs_sum += sorted[j]->hegemony;
      } else {
        other_sum += sorted[j]->hegemony;
      }
    }
    score.score = manrs_sum - other_sum;
    out.push_back(score);
    i = j;
  }
  return out;
}

}  // namespace manrs::core
