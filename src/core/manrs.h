// The MANRS participant registry (§2.4, §5.2 of the paper).
//
// MANRS runs four programs; the paper (and this reproduction) focuses on
// Network Operators (ISP) and CDN & Cloud Providers. Membership is by
// organization, which registers a subset of its ASNs in a program -- the
// registered set, not the organization's full AS list, is what the MANRS
// requirements bind (the gap between the two is Finding 7.0). The
// "historical MANRS dataset" is the per-participant join date.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netbase/asn.h"
#include "util/date.h"

namespace manrs::core {

enum class Program : uint8_t {
  kIsp = 0,        // MANRS for Network Operators
  kCdn = 1,        // MANRS for CDN and Cloud Providers
  kIxp = 2,        // not analyzed in the paper; carried for completeness
  kEquipment = 3,  // equipment vendors
};

std::string_view to_string(Program p);
std::optional<Program> parse_program(std::string_view s);

/// The actions the paper measures.
///   Action 1: filter invalid announcements (customers for ISPs; peers and
///             customers for CDNs).
///   Action 4: register intended announcements in IRR or RPKI.
/// The program-specific Action 4 thresholds (§8): ISPs must originate at
/// least 90% IRR/RPKI-valid prefixes; CDNs 100%.
inline constexpr double kIspAction4Threshold = 90.0;
inline constexpr double kCdnAction4Threshold = 100.0;

double action4_threshold(Program p);

struct Participant {
  std::string org_id;     // joins with the as2org dataset
  Program program = Program::kIsp;
  util::Date joined;      // from the historical MANRS dataset
  std::vector<net::Asn> registered_ases;
};

class ManrsRegistry {
 public:
  void add_participant(Participant participant);

  size_t participant_count() const { return participants_.size(); }
  const std::vector<Participant>& participants() const {
    return participants_;
  }

  /// Is `asn` registered in any program (optionally: as of `date`)?
  bool is_member(net::Asn asn) const;
  bool is_member(net::Asn asn, const util::Date& date) const;

  /// The program `asn` is registered under, if any (first registration
  /// wins if an AS were listed twice).
  std::optional<Program> program_of(net::Asn asn) const;

  /// Join date of the participant that registered `asn`.
  std::optional<util::Date> join_date(net::Asn asn) const;

  /// All registered ASNs (ascending), optionally restricted to a program
  /// and/or to participants that joined on or before `date`.
  std::vector<net::Asn> member_ases() const;
  std::vector<net::Asn> member_ases(Program program) const;
  std::vector<net::Asn> member_ases_at(const util::Date& date) const;

  /// Participants in a program.
  std::vector<const Participant*> participants_in(Program program) const;

  const Participant* participant_of(net::Asn asn) const;
  const Participant* find_org(std::string_view org_id) const;

  /// CSV serialization: org_id,program,joined,ases("+"-separated). Mirrors
  /// the shape of the scraped participant list plus ISOC's join dates.
  void write_csv(std::ostream& out) const;
  static ManrsRegistry read_csv(std::istream& in, size_t* bad_rows = nullptr);

 private:
  std::vector<Participant> participants_;
  std::unordered_map<uint32_t, size_t> as_to_participant_;
};

}  // namespace manrs::core
