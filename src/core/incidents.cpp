#include "core/incidents.h"

#include <algorithm>
#include <unordered_set>

namespace manrs::core {

std::string_view to_string(IncidentKind kind) {
  switch (kind) {
    case IncidentKind::kMoasConflict:
      return "moas-conflict";
    case IncidentKind::kRpkiInvalidOrigin:
      return "rpki-invalid-origin";
  }
  return "?";
}

void IncidentDetector::observe(const std::vector<bgp::PrefixOrigin>& table) {
  size_t snapshot = snapshot_count_++;

  if (snapshot == 0) {
    // First snapshot establishes the baseline origins. RPKI-invalid
    // originations present from the start still open incidents (they are
    // observable misconfigurations); MOAS needs history, so prefixes with
    // multiple initial origins are treated as legitimate multi-origin
    // (anycast etc.).
    for (const auto& po : table) {
      baseline_[po.prefix].push_back(po.origin);
    }
    for (auto& [prefix, origins] : baseline_) {
      std::sort(origins.begin(), origins.end());
      origins.erase(std::unique(origins.begin(), origins.end()),
                    origins.end());
    }
  }

  std::unordered_set<bgp::PrefixOrigin> offending_now;
  for (const auto& po : table) {
    bool rpki_invalid =
        rpki::is_invalid(vrps_.validate(po.prefix, po.origin));
    bool moas = false;
    if (snapshot > 0) {
      auto it = baseline_.find(po.prefix);
      if (it != baseline_.end() &&
          std::find(it->second.begin(), it->second.end(), po.origin) ==
              it->second.end()) {
        moas = true;
      }
    }
    if (!rpki_invalid && !moas) continue;

    bgp::PrefixOrigin key{po.prefix, po.origin};
    offending_now.insert(key);
    auto open_it = open_.find(key);
    if (open_it != open_.end()) {
      Incident& incident = list_[open_it->second];
      incident.last_snapshot = snapshot;
      continue;
    }
    Incident incident;
    // MOAS takes precedence as the more specific diagnosis.
    incident.kind = moas ? IncidentKind::kMoasConflict
                         : IncidentKind::kRpkiInvalidOrigin;
    incident.prefix = po.prefix;
    incident.offender = po.origin;
    if (moas) {
      incident.established = baseline_.at(po.prefix).front();
    }
    incident.first_snapshot = snapshot;
    incident.last_snapshot = snapshot;
    open_.emplace(key, list_.size());
    list_.push_back(incident);
  }

  // Close incidents whose offending pair disappeared.
  for (auto it = open_.begin(); it != open_.end();) {
    if (!offending_now.count(it->first)) {
      it = open_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<Incident> IncidentDetector::incidents() const {
  std::vector<Incident> out = list_;
  for (auto& incident : out) {
    incident.ongoing =
        snapshot_count_ > 0 && incident.last_snapshot == snapshot_count_ - 1;
  }
  return out;
}

IncidentSummary summarize_incidents(const std::vector<Incident>& incidents,
                                    const ManrsRegistry& registry,
                                    size_t member_origin_count,
                                    size_t other_origin_count) {
  IncidentSummary summary;
  double total_duration = 0;
  for (const auto& incident : incidents) {
    ++summary.total;
    if (incident.kind == IncidentKind::kMoasConflict) ++summary.moas;
    if (incident.kind == IncidentKind::kRpkiInvalidOrigin) {
      ++summary.rpki_invalid;
    }
    if (registry.is_member(incident.offender)) {
      ++summary.by_manrs_members;
    } else {
      ++summary.by_others;
    }
    total_duration += static_cast<double>(incident.duration());
  }
  if (summary.total > 0) {
    summary.mean_duration =
        total_duration / static_cast<double>(summary.total);
  }
  if (member_origin_count > 0) {
    summary.member_rate_per_origin =
        static_cast<double>(summary.by_manrs_members) /
        static_cast<double>(member_origin_count);
  }
  if (other_origin_count > 0) {
    summary.other_rate_per_origin =
        static_cast<double>(summary.by_others) /
        static_cast<double>(other_origin_count);
  }
  return summary;
}

}  // namespace manrs::core
