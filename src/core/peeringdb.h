// A PeeringDB-like network registry.
//
// MANRS Action 3 requires members to "maintain up-to-date network contact
// information in IRR databases or PeeringDB" (§2.4). The paper scopes its
// measurements to Actions 1 and 4; this module implements the Action 3
// observable as an extension (§12: "extend this study to actions that are
// not related to routing"): a minimal model of PeeringDB's `net` objects
// with per-record update timestamps, plus the conformance check combining
// both sources.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "irr/database.h"
#include "netbase/asn.h"
#include "util/date.h"

namespace manrs::core {

/// One PeeringDB `net` record, reduced to the Action 3 observables.
struct PeeringDbNet {
  net::Asn asn;
  std::string name;
  std::string contact_email;  // empty = no usable contact
  util::Date updated;         // last modification timestamp
};

class PeeringDb {
 public:
  void add(PeeringDbNet net);

  size_t size() const { return nets_.size(); }
  const PeeringDbNet* find(net::Asn asn) const;

  /// CSV serialization (asn,name,contact,updated).
  void write_csv(std::ostream& out) const;
  static PeeringDb read_csv(std::istream& in, size_t* bad_rows = nullptr);

 private:
  std::unordered_map<uint32_t, PeeringDbNet> nets_;
};

/// MANRS Action 3 verdict. "Up to date" is operationalized as: a contact
/// exists in the IRR (aut-num admin-c/tech-c/e-mail) or in PeeringDB, and
/// when only PeeringDB has it, the record was touched within
/// `max_age_days` of `as_of` (stale PeeringDB records are a known failure
/// mode; IRR objects carry no per-attribute timestamps in our model, so
/// their presence alone counts).
struct Action3Verdict {
  bool conformant = false;
  bool via_irr = false;
  bool via_peeringdb = false;
  bool stale_peeringdb = false;  // record exists but is out of date
};

Action3Verdict check_action3(const irr::IrrRegistry& irr_registry,
                             const PeeringDb& peeringdb, net::Asn asn,
                             const util::Date& as_of,
                             int64_t max_age_days = 365 * 2);

}  // namespace manrs::core
